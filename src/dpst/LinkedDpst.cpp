//===- dpst/LinkedDpst.cpp - Pointer-linked DPST --------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/LinkedDpst.h"

#include <cassert>

#include "dpst/ParallelQueryImpl.h"

using namespace avc;

LinkedDpst::~LinkedDpst() {
  for (size_t I = 0, E = Table.size(); I != E; ++I)
    delete Table[I];
}

NodeId LinkedDpst::addNode(NodeId Parent, DpstNodeKind Kind, uint32_t TaskId) {
  std::lock_guard<SpinLock> Guard(AppendLock);
  Node *Record = new Node;
  Record->NumChildren = 0;
  Record->TaskId = TaskId;
  Record->Kind = Kind;
  if (Parent == InvalidNodeId) {
    assert(Table.empty() && "only the first node may be a root");
    assert(Kind == DpstNodeKind::Finish && "the root must be a finish node");
    Record->Parent = nullptr;
    Record->Depth = 0;
    Record->SiblingIndex = 0;
  } else {
    assert(Parent < Table.size() && "parent id out of range");
    Node *ParentRecord = Table[Parent];
    assert(ParentRecord->Kind != DpstNodeKind::Step &&
           "step nodes are leaves and cannot have children");
    Record->Parent = ParentRecord;
    Record->Depth = ParentRecord->Depth + 1;
    Record->SiblingIndex = ParentRecord->NumChildren++;
  }
  size_t Id = Table.emplaceBack(Record);
  assert(Id <= MaxNodeId && "DPST node count exceeds id space");
  Record->Id = static_cast<NodeId>(Id);
  if (IndexEnabled)
    Index.onNodeAdded(Record->Id,
                      Record->Parent ? Record->Parent->Id : InvalidNodeId,
                      Kind, Record->Depth, Record->SiblingIndex);
  return Record->Id;
}

const LinkedDpst::Node *LinkedDpst::nodeFor(NodeId Id) const {
  assert(Id < Table.size() && "node id out of range");
  return Table[Id];
}

DpstNodeKind LinkedDpst::kind(NodeId Id) const { return nodeFor(Id)->Kind; }

NodeId LinkedDpst::parent(NodeId Id) const {
  const Node *Parent = nodeFor(Id)->Parent;
  return Parent ? Parent->Id : InvalidNodeId;
}

uint32_t LinkedDpst::depth(NodeId Id) const { return nodeFor(Id)->Depth; }

uint32_t LinkedDpst::siblingIndex(NodeId Id) const {
  return nodeFor(Id)->SiblingIndex;
}

uint32_t LinkedDpst::taskId(NodeId Id) const { return nodeFor(Id)->TaskId; }

size_t LinkedDpst::numNodes() const { return Table.size(); }

struct LinkedDpst::QueryAdapter {
  uint32_t depthOf(const Node *N) const { return N->Depth; }
  const Node *parentOf(const Node *N) const { return N->Parent; }
  DpstNodeKind kindOf(const Node *N) const { return N->Kind; }
  uint32_t siblingIndexOf(const Node *N) const { return N->SiblingIndex; }
  bool sameNode(const Node *A, const Node *B) const { return A == B; }
};

bool LinkedDpst::logicallyParallelUncached(NodeId A, NodeId B) const {
  QueryAdapter Adapter;
  return detail::queryLogicallyParallel<QueryAdapter, const Node *>(
      Adapter, nodeFor(A), nodeFor(B));
}

bool LinkedDpst::treeOrderedBefore(NodeId A, NodeId B) const {
  QueryAdapter Adapter;
  return detail::queryTreeOrderedBefore<QueryAdapter, const Node *>(
      Adapter, nodeFor(A), nodeFor(B));
}
