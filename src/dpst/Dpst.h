//===- dpst/Dpst.h - Dynamic Program Structure Tree interface ---*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract interface over the two DPST implementations the paper compares
/// (Figure 14): an array-based layout (ArrayDpst) and a pointer-linked layout
/// (LinkedDpst). The tree records the series-parallel structure of a task
/// parallel execution; the key query is whether two step nodes can logically
/// execute in parallel in *some* schedule for the observed input.
///
/// Concurrency contract: addNode() may be called from any worker thread
/// (appends are serialized internally); all read accessors and
/// logicallyParallelUncached() are safe concurrently with appends, because
/// the path from any existing node to the root and the left-to-right sibling
/// order never change (Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_DPST_H
#define AVC_DPST_DPST_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "dpst/DpstNodeKind.h"
#include "dpst/DpstQueryIndex.h"

namespace avc {

/// Selects the DPST data layout (the Figure 14 ablation).
enum class DpstLayout : uint8_t {
  /// Nodes overlaid on a linear array; parents referenced by index.
  Array,
  /// Individually heap-allocated nodes linked by pointers.
  Linked,
};

/// Abstract Dynamic Program Structure Tree.
class Dpst {
public:
  Dpst() = default;
  /// \p BuildIndex false skips query-index construction entirely (see
  /// createDpst(DpstLayout, QueryMode)).
  explicit Dpst(bool BuildIndex) : IndexEnabled(BuildIndex) {}
  Dpst(const Dpst &) = delete;
  Dpst &operator=(const Dpst &) = delete;
  virtual ~Dpst();

  /// Appends a node of \p Kind under \p Parent (rightmost sibling position)
  /// on behalf of task \p TaskId, and returns its id. Pass InvalidNodeId as
  /// \p Parent for the root, which must be the first node created and must
  /// be a finish node.
  virtual NodeId addNode(NodeId Parent, DpstNodeKind Kind,
                         uint32_t TaskId) = 0;

  /// Returns the kind of node \p Id.
  virtual DpstNodeKind kind(NodeId Id) const = 0;

  /// Returns the parent of \p Id, or InvalidNodeId for the root.
  virtual NodeId parent(NodeId Id) const = 0;

  /// Returns the depth of \p Id (root has depth 0).
  virtual uint32_t depth(NodeId Id) const = 0;

  /// Returns the left-to-right position of \p Id among its siblings.
  virtual uint32_t siblingIndex(NodeId Id) const = 0;

  /// Returns the id of the task that executes node \p Id.
  virtual uint32_t taskId(NodeId Id) const = 0;

  /// Returns the number of nodes currently in the tree (Table 1 column).
  virtual size_t numNodes() const = 0;

  /// Returns true if step nodes \p A and \p B can logically execute in
  /// parallel: the child of LCA(A, B) that is an ancestor of the leftmost of
  /// the two is an async node. Returns false for A == B and for nodes in an
  /// ancestor relation. This is the uncached structural query; callers that
  /// care about repeated queries should go through ParallelismOracle.
  virtual bool logicallyParallelUncached(NodeId A, NodeId B) const = 0;

  /// Returns true if \p A precedes \p B in the tree's left-to-right
  /// (pre-)order. Requires A != B. Creation-id order is *not* a substitute:
  /// parallel tasks append nodes concurrently, so ids interleave across
  /// subtrees. The complete-metadata retention policy (leftmost/rightmost
  /// parallel entries; see AtomicityChecker) relies on this order.
  virtual bool treeOrderedBefore(NodeId A, NodeId B) const = 0;

  /// Mode-dispatched logically-parallel query: Walk runs the layout's
  /// O(depth) LCA walk; Lift and Label run against the query-acceleration
  /// index (DpstQueryIndex.h), whose cost is independent of the layout.
  /// On a tree built without the index (hasQueryIndex() false), Lift and
  /// Label degrade to Walk.
  bool logicallyParallel(NodeId A, NodeId B, QueryMode Mode) const;

  /// Mode-dispatched tree-order query (same dispatch as above).
  bool treeOrderedBefore(NodeId A, NodeId B, QueryMode Mode) const;

  /// Returns the root node id (0 by construction), asserting the tree is
  /// non-empty.
  NodeId root() const;

  /// Returns true if \p Ancestor is \p Id or a proper ancestor of \p Id.
  bool isAncestorOrSelf(NodeId Ancestor, NodeId Id) const;

  /// The query-acceleration index (for tests and memory accounting).
  DpstQueryIndex &queryIndex() { return Index; }
  const DpstQueryIndex &queryIndex() const { return Index; }

  /// True if this tree maintains the Lift/Label query index.
  bool hasQueryIndex() const { return IndexEnabled; }

protected:
  /// Lift/Label acceleration structures, fed by every addNode
  /// implementation under its append serialization — only while
  /// IndexEnabled; a Walk-only tree (the paper's baseline configuration)
  /// must not pay the index's construction time or memory.
  DpstQueryIndex Index;
  const bool IndexEnabled = true;
};

/// Creates an empty DPST with the requested data \p Layout, maintaining
/// the Lift/Label query index.
std::unique_ptr<Dpst> createDpst(DpstLayout Layout);

/// Creates an empty DPST with the requested data \p Layout for a run whose
/// parallelism queries use \p Query: Walk-mode trees skip query-index
/// construction entirely so the baseline ablation measures the paper's
/// cost, not the index's.
std::unique_ptr<Dpst> createDpst(DpstLayout Layout, QueryMode Query);

/// Returns a short name for \p Layout ("array" or "linked").
const char *dpstLayoutName(DpstLayout Layout);

} // namespace avc

#endif // AVC_DPST_DPST_H
