//===- dpst/LinkedDpst.h - Pointer-linked DPST ------------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline DPST layout of the Figure 14 ablation: each node is a
/// separate heap allocation linked to its parent by pointer, and an id-to-
/// pointer table maps the public NodeId handles to nodes. This deliberately
/// preserves the costs the paper attributes to a "linked data structure"
/// DPST — per-node allocation and pointer chasing with poor locality.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_LINKEDDPST_H
#define AVC_DPST_LINKEDDPST_H

#include "dpst/Dpst.h"
#include "support/ChunkedVector.h"

namespace avc {

/// Pointer-linked DPST with an id-to-node translation table.
class LinkedDpst : public Dpst {
public:
  using Dpst::Dpst;
  ~LinkedDpst() override;

  NodeId addNode(NodeId Parent, DpstNodeKind Kind, uint32_t TaskId) override;
  DpstNodeKind kind(NodeId Id) const override;
  NodeId parent(NodeId Id) const override;
  uint32_t depth(NodeId Id) const override;
  uint32_t siblingIndex(NodeId Id) const override;
  uint32_t taskId(NodeId Id) const override;
  size_t numNodes() const override;
  bool logicallyParallelUncached(NodeId A, NodeId B) const override;
  bool treeOrderedBefore(NodeId A, NodeId B) const override;

private:
  struct Node {
    Node *Parent;
    NodeId Id;
    uint32_t Depth;
    uint32_t SiblingIndex;
    uint32_t NumChildren;
    uint32_t TaskId;
    DpstNodeKind Kind;
  };

  struct QueryAdapter;

  const Node *nodeFor(NodeId Id) const;

  /// Id -> heap node. The table itself is chunked so lookups stay valid
  /// while other workers append.
  ChunkedVector<Node *> Table;
  SpinLock AppendLock;
};

} // namespace avc

#endif // AVC_DPST_LINKEDDPST_H
