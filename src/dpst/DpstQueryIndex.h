//===- dpst/DpstQueryIndex.h - Constant-time parallelism queries -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query-acceleration layer for the DPST. The baseline logically-parallel
/// query (ParallelQueryImpl.h) walks parent links to the LCA and costs
/// O(depth) per uncached query — for deep recursive workloads (sort,
/// karatsuba, convexhull) that walk dominates checker overhead, and the
/// exact-pair LcaCache cannot help when step pairs rarely repeat. The DPST
/// is append-only with immutable parents, so acceleration structures can be
/// computed once at insertion and never touched again:
///
///  - **Binary-lifting jump tables** (Lift mode): per node, the ancestors
///    at distance 2^k, built in O(log depth) at insertion. Equal-depth
///    lifting and LCA-child location become O(log depth) flat-array reads.
///
///  - **Fork-path labels** (Label mode, after DePa, Westrick et al.
///    PPoPP'22): per *step* node, the packed (sibling-index, is-async)
///    sequence of its ancestors root-to-leaf, stored contiguously in a
///    chunked side arena. A step-vs-step query compares the two labels:
///    the first divergent entry names the two children of the LCA
///    directly, so the common query (steps whose LCA sits near the root)
///    resolves in O(1) word operations with no pointer chasing at all.
///    Steps without a label (non-leaf nodes, or nodes past the arena
///    budget of a pathological deep-and-wide tree) fall back to Lift.
///
/// The index stores its own packed per-node record, so Lift/Label queries
/// never touch the owning layout — the linked layout gets the same
/// acceleration as the array layout (the Figure 14 ablation stays
/// meaningful through Walk mode).
///
/// Thread safety matches the Dpst contract: onNodeAdded() is called under
/// the owning layout's append lock in id order; all queries are safe
/// concurrently with appends (FlatGrowVector publication plus
/// never-deallocated label chunks).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_DPSTQUERYINDEX_H
#define AVC_DPST_DPSTQUERYINDEX_H

#include <cstdint>
#include <memory>
#include <vector>

#include "dpst/DpstNodeKind.h"
#include "support/FlatGrowVector.h"

namespace avc {

/// Selects the algorithm answering parallelism and tree-order queries
/// (the query-acceleration ablation; Walk is the paper's algorithm).
enum class QueryMode : uint8_t {
  /// O(depth) lockstep parent walk to the LCA (ParallelQueryImpl.h).
  Walk,
  /// O(log depth) binary-lifting jumps over the index's flat arrays.
  Lift,
  /// O(1) fork-path label comparison for step pairs; falls back to Lift
  /// when a label is missing.
  Label,
};

/// Returns a short name for \p Mode ("walk", "lift", "label").
const char *queryModeName(QueryMode Mode);

/// Parses a query-mode name; returns false if \p Name is not recognized.
bool parseQueryMode(const char *Name, QueryMode &Mode);

/// Side structure answering Lift/Label queries for one DPST instance.
class DpstQueryIndex {
public:
  DpstQueryIndex();
  DpstQueryIndex(const DpstQueryIndex &) = delete;
  DpstQueryIndex &operator=(const DpstQueryIndex &) = delete;
  ~DpstQueryIndex();

  /// Records node \p Id. Must be called in id order (0, 1, 2, ...) under
  /// the owning layout's append serialization, with the parent already
  /// recorded. Builds the jump row in O(log \p Depth); for step nodes also
  /// builds the fork-path label (O(\p Depth) one-time ancestor walk,
  /// amortized over every query that later hits the label).
  void onNodeAdded(NodeId Id, NodeId Parent, DpstNodeKind Kind,
                   uint32_t Depth, uint32_t SiblingIndex);

  /// Lift/Label implementations of Dpst::logicallyParallelUncached.
  bool logicallyParallelLifted(NodeId A, NodeId B) const;
  bool logicallyParallelLabeled(NodeId A, NodeId B) const;

  /// Lift/Label implementations of Dpst::treeOrderedBefore.
  bool treeOrderedBeforeLifted(NodeId A, NodeId B) const;
  bool treeOrderedBeforeLabeled(NodeId A, NodeId B) const;

  /// True if \p Id carries a fork-path label (step within the arena
  /// budget). Exposed for tests and memory accounting.
  bool hasLabel(NodeId Id) const;

  /// Words currently used by the label arena (4 bytes each).
  size_t labelArenaWords() const { return LabelWordsUsed; }

  /// Caps the label arena (in 4-byte words); nodes added after the cap is
  /// reached get no label and fall back to Lift. Tests use a tiny cap to
  /// force the fallback path; the default bounds the O(steps * depth)
  /// label memory of pathological deep-and-wide trees.
  void setLabelCapacityWords(size_t Words) { LabelWordsCap = Words; }

  size_t numNodes() const { return Meta.size(); }

private:
  /// Per-node hot record: everything a Lift query reads, 16 bytes so a
  /// cache line holds four. JumpOffset indexes the node's lifting row in
  /// the jump arena (row length derives from the depth).
  struct alignas(16) NodeMeta {
    uint64_t JumpOffset;
    uint32_t DepthKind; ///< (Depth << 2) | DpstNodeKind
    uint32_t SiblingIndex;
  };

  /// Fork-path label: Len packed entries, one per ancestor level
  /// (root-to-node), each (SiblingIndex << 1) | is-async. Data points into
  /// a label-arena chunk and stays valid for the index's lifetime;
  /// nullptr means "no label, use Lift".
  struct LabelRef {
    const uint32_t *Data;
    uint32_t Len;
  };

  struct LiftView; // adapter over Meta/Jumps snapshots (DpstQueryIndex.cpp)

  uint32_t *allocateLabel(uint32_t Len);

  static constexpr size_t LabelChunkWords = size_t(1) << 16;
  /// Default label budget: 16M words = 64 MiB. Real workloads (balanced
  /// recursion, depth O(log n)) use a tiny fraction; the cap only engages
  /// for adversarial deep-and-wide trees.
  static constexpr size_t DefaultLabelCapWords = size_t(1) << 24;

  FlatGrowVector<NodeMeta> Meta; ///< hot per-node records, indexed by id
  FlatGrowVector<NodeId> Jumps;  ///< concatenated binary-lifting rows
  FlatGrowVector<LabelRef> Labels; ///< per-node label refs, indexed by id

  /// Label arena chunks; grown only by onNodeAdded (serialized), never
  /// read by queries (they hold direct Data pointers), never deallocated
  /// before destruction.
  std::vector<std::unique_ptr<uint32_t[]>> LabelChunks;
  /// Active bump-allocation chunk. Tracked separately from
  /// LabelChunks.back() because oversized labels push dedicated chunks
  /// without retiring the current bump chunk.
  uint32_t *CurChunk = nullptr;
  size_t LabelChunkUsed = 0; ///< words used in CurChunk
  size_t LabelWordsUsed = 0;
  size_t LabelWordsCap = DefaultLabelCapWords;
};

} // namespace avc

#endif // AVC_DPST_DPSTQUERYINDEX_H
