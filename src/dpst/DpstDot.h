//===- dpst/DpstDot.h - Graphviz dump of a DPST -----------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a DPST as Graphviz DOT for debugging and documentation (the
/// README's Figure 2 reproduction is generated with this).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_DPSTDOT_H
#define AVC_DPST_DPSTDOT_H

#include <string>

#include "dpst/Dpst.h"

namespace avc {

/// Returns the DOT source for \p Tree. Nodes are labeled with kind, id, and
/// owning task; sibling order is preserved via invisible ordering edges.
std::string dpstToDot(const Dpst &Tree);

} // namespace avc

#endif // AVC_DPST_DPSTDOT_H
