//===- dpst/ParallelQueryImpl.h - Shared LCA-parallel algorithm -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The series-parallel query shared by both DPST layouts, expressed as a
/// template so each layout runs it over its native representation (indices
/// for ArrayDpst, pointers for LinkedDpst) without virtual dispatch inside
/// the LCA walk. Private to the dpst library.
///
/// Two distinct step nodes S1 (left) and S2 are logically parallel iff the
/// immediate child of LCA(S1, S2) that is an ancestor of S1 is an async node
/// (Section 2, after Raman et al.).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_PARALLELQUERYIMPL_H
#define AVC_DPST_PARALLELQUERYIMPL_H

#include <bit>
#include <cassert>
#include <cstdint>

#include "dpst/DpstNodeKind.h"

namespace avc {
namespace detail {

/// Runs the LCA-based logically-parallel query.
///
/// \p ImplT must provide, for node handles of type \p HandleT:
///   uint32_t depthOf(HandleT), HandleT parentOf(HandleT),
///   DpstNodeKind kindOf(HandleT), uint32_t siblingIndexOf(HandleT),
///   bool sameNode(HandleT, HandleT).
template <typename ImplT, typename HandleT>
bool queryLogicallyParallel(const ImplT &Impl, HandleT A, HandleT B) {
  if (Impl.sameNode(A, B))
    return false;

  // Raise the deeper node until both are at the same depth.
  HandleT X = A;
  HandleT Y = B;
  while (Impl.depthOf(X) > Impl.depthOf(Y))
    X = Impl.parentOf(X);
  while (Impl.depthOf(Y) > Impl.depthOf(X))
    Y = Impl.parentOf(Y);

  // One node is an ancestor of the other: they are ordered (in series).
  // This cannot happen for two distinct step nodes (steps are leaves), but
  // the query is defined for any node pair.
  if (Impl.sameNode(X, Y))
    return false;

  // Walk both paths in lockstep until they join: afterwards X and Y are the
  // children of the LCA on the paths to A and B respectively.
  while (!Impl.sameNode(Impl.parentOf(X), Impl.parentOf(Y))) {
    X = Impl.parentOf(X);
    Y = Impl.parentOf(Y);
  }

  // The leftmost of the two LCA children decides: async => parallel.
  HandleT Left =
      Impl.siblingIndexOf(X) < Impl.siblingIndexOf(Y) ? X : Y;
  assert(Impl.siblingIndexOf(X) != Impl.siblingIndexOf(Y) &&
         "distinct children of one parent must have distinct positions");
  return Impl.kindOf(Left) == DpstNodeKind::Async;
}

/// Decides whether node A precedes node B in the DPST's left-to-right
/// (pre-)order. An ancestor precedes its descendants; otherwise the
/// sibling order of the two children of LCA(A, B) decides. Requires
/// A != B.
template <typename ImplT, typename HandleT>
bool queryTreeOrderedBefore(const ImplT &Impl, HandleT A, HandleT B) {
  assert(!Impl.sameNode(A, B) && "tree-order query on identical nodes");
  HandleT X = A;
  HandleT Y = B;
  while (Impl.depthOf(X) > Impl.depthOf(Y))
    X = Impl.parentOf(X);
  while (Impl.depthOf(Y) > Impl.depthOf(X))
    Y = Impl.parentOf(Y);
  if (Impl.sameNode(X, Y))
    // One is an ancestor of the other; pre-order puts the ancestor first.
    // X == A means A was the shallower node, i.e. the ancestor.
    return Impl.depthOf(A) < Impl.depthOf(B);
  while (!Impl.sameNode(Impl.parentOf(X), Impl.parentOf(Y))) {
    X = Impl.parentOf(X);
    Y = Impl.parentOf(Y);
  }
  return Impl.siblingIndexOf(X) < Impl.siblingIndexOf(Y);
}

//===----------------------------------------------------------------------===//
// Binary-lifting variants (QueryMode::Lift)
//===----------------------------------------------------------------------===//
//
// Same queries in O(log depth) instead of O(depth). \p ImplT must provide,
// in addition to the walk requirements above,
//   HandleT jumpOf(HandleT, unsigned K)  -- ancestor at distance 2^K,
// defined whenever 2^K <= depthOf(HandleT). The DPST is append-only with
// immutable parents, so the jump rows are built once at insertion
// (DpstQueryIndex) and these queries read only published rows.

/// Returns the ancestor of \p X at depth \p TargetDepth in O(log depth).
template <typename ImplT, typename HandleT>
HandleT liftToDepth(const ImplT &Impl, HandleT X, uint32_t TargetDepth) {
  uint32_t D = Impl.depthOf(X);
  assert(D >= TargetDepth && "cannot lift downwards");
  while (D > TargetDepth) {
    // Largest jump that does not overshoot the target.
    unsigned K = static_cast<unsigned>(std::bit_width(D - TargetDepth)) - 1;
    X = Impl.jumpOf(X, K);
    D -= 1u << K;
  }
  return X;
}

/// Lifts two distinct equal-depth nodes, neither an ancestor of the other,
/// to the two children of their LCA in O(log depth).
template <typename ImplT, typename HandleT>
void liftToLcaChildren(const ImplT &Impl, HandleT &X, HandleT &Y) {
  assert(Impl.depthOf(X) == Impl.depthOf(Y) && !Impl.sameNode(X, Y) &&
         "lift requires distinct equal-depth nodes");
  uint32_t D = Impl.depthOf(X);
  for (unsigned K = static_cast<unsigned>(std::bit_width(D)); K-- > 0;) {
    if ((1u << K) > D)
      continue; // jump row shrank below this level after an earlier jump
    HandleT XUp = Impl.jumpOf(X, K);
    HandleT YUp = Impl.jumpOf(Y, K);
    if (!Impl.sameNode(XUp, YUp)) {
      X = XUp;
      Y = YUp;
      D -= 1u << K;
    }
  }
  // All differing jumps taken: the parents must now coincide (the LCA).
  assert(Impl.sameNode(Impl.parentOf(X), Impl.parentOf(Y)) &&
         "lifting must stop at the children of the LCA");
}

/// QueryMode::Lift version of queryLogicallyParallel.
template <typename ImplT, typename HandleT>
bool queryLogicallyParallelLifted(const ImplT &Impl, HandleT A, HandleT B) {
  if (Impl.sameNode(A, B))
    return false;
  uint32_t DA = Impl.depthOf(A);
  uint32_t DB = Impl.depthOf(B);
  HandleT X = DA > DB ? liftToDepth(Impl, A, DB) : A;
  HandleT Y = DB > DA ? liftToDepth(Impl, B, DA) : B;
  if (Impl.sameNode(X, Y))
    return false; // ancestor relation: in series
  liftToLcaChildren(Impl, X, Y);
  HandleT Left = Impl.siblingIndexOf(X) < Impl.siblingIndexOf(Y) ? X : Y;
  return Impl.kindOf(Left) == DpstNodeKind::Async;
}

/// QueryMode::Lift version of queryTreeOrderedBefore.
template <typename ImplT, typename HandleT>
bool queryTreeOrderedBeforeLifted(const ImplT &Impl, HandleT A, HandleT B) {
  assert(!Impl.sameNode(A, B) && "tree-order query on identical nodes");
  uint32_t DA = Impl.depthOf(A);
  uint32_t DB = Impl.depthOf(B);
  HandleT X = DA > DB ? liftToDepth(Impl, A, DB) : A;
  HandleT Y = DB > DA ? liftToDepth(Impl, B, DA) : B;
  if (Impl.sameNode(X, Y))
    return DA < DB; // pre-order puts the ancestor first
  liftToLcaChildren(Impl, X, Y);
  return Impl.siblingIndexOf(X) < Impl.siblingIndexOf(Y);
}

} // namespace detail
} // namespace avc

#endif // AVC_DPST_PARALLELQUERYIMPL_H
