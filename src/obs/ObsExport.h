//===- obs/ObsExport.h - Chrome trace-event JSON export --------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns drained ring events into a Chrome trace-event JSON file loadable
/// in Perfetto (ui.perfetto.dev) or chrome://tracing. Split from the
/// session logic so the sanitizer/writer can be unit-tested on synthetic
/// event streams (tests/ObsTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_OBS_OBSEXPORT_H
#define AVC_OBS_OBSEXPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/ObsRing.h"

namespace avc {
namespace obs {

/// A drained event tagged with its ring's thread ordinal.
struct ExportEvent {
  Event E;
  uint32_t Tid;
};

/// Self-accounting attached to the exported file (the "obs/self-accounting"
/// span plus the otherData block).
struct ExportSummary {
  uint64_t EventsRecorded = 0; ///< pushes across all rings (incl. dropped)
  uint64_t EventsDropped = 0;  ///< lost to ring wraparound
  uint64_t EventsOrphaned = 0; ///< B/E halves discarded by the sanitizer
  uint64_t WallNs = 0;         ///< session duration
  uint64_t DrainNs = 0;        ///< post-run drain + sanitize + sort time
  double RecordNsPerEvent = 0; ///< calibrated at session start

  /// The tracer's estimate of how much it slowed the traced run: recording
  /// cost over session wall time (drain/export happen after the run and
  /// are reported separately).
  double estimatedOverheadPct() const {
    if (WallNs == 0)
      return 0.0;
    return 100.0 * (RecordNsPerEvent * double(EventsRecorded)) /
           double(WallNs);
  }
};

/// Repairs streams truncated by ring wraparound: per tid, End events with
/// no matching Begin (the Begin was overwritten) and Begins left open at
/// drain are removed, so every exported B has its E. Counters, gauges, and
/// instants pass through. Returns the number of events removed.
uint64_t sanitizeSpans(std::vector<ExportEvent> &Events);

/// Stable-sorts by timestamp (drain order is kept among equal stamps, so
/// per-thread B/E nesting survives) and writes the trace-event JSON file.
/// Sanitize first. Returns false with a message on stderr if \p Path
/// cannot be written.
bool writeChromeTrace(const std::string &Path,
                      std::vector<ExportEvent> &Events,
                      const ExportSummary &Summary);

} // namespace obs
} // namespace avc

#endif // AVC_OBS_OBSEXPORT_H
