//===- obs/Metrics.cpp - Process-wide aggregated metrics registry ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace avc;
using namespace avc::metrics;

std::atomic<uint32_t> avc::metrics::GTimingEnabled{0};

void avc::metrics::setTimingEnabled(bool Enabled) {
  GTimingEnabled.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

unsigned avc::metrics::threadOrdinal() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Ordinal =
      Next.fetch_add(1, std::memory_order_relaxed);
  return Ordinal;
}

bool avc::metrics::isValidMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  auto Head = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == ':';
  };
  if (!Head(Name[0]))
    return false;
  for (size_t I = 1; I < Name.size(); ++I)
    if (!Head(Name[I]) && !(Name[I] >= '0' && Name[I] <= '9'))
      return false;
  return true;
}

const MetricSample *Snapshot::find(const std::string &Name) const {
  for (const MetricSample &M : Metrics)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

MetricsRegistry::Entry &
MetricsRegistry::getOrCreate(const std::string &Name, const std::string &Help,
                             MetricType Type) {
  if (!isValidMetricName(Name)) {
    std::fprintf(stderr, "metrics: invalid metric name '%s'\n", Name.c_str());
    std::abort();
  }
  std::lock_guard<SpinLock> Guard(Lock);
  for (auto &E : Entries)
    if (E->Name == Name) {
      if (E->Type != Type) {
        std::fprintf(stderr,
                     "metrics: '%s' re-registered with a different type\n",
                     Name.c_str());
        std::abort();
      }
      return *E;
    }
  auto E = std::make_unique<Entry>();
  E->Name = Name;
  E->Help = Help;
  E->Type = Type;
  switch (Type) {
  case MetricType::Counter:
    E->C = std::make_unique<Counter>();
    break;
  case MetricType::Gauge:
    E->G = std::make_unique<Gauge>();
    break;
  case MetricType::Histogram:
    E->H = std::make_unique<Histogram>();
    break;
  }
  Entries.push_back(std::move(E));
  return *Entries.back();
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help) {
  return *getOrCreate(Name, Help, MetricType::Counter).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help) {
  return *getOrCreate(Name, Help, MetricType::Gauge).G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help) {
  return *getOrCreate(Name, Help, MetricType::Histogram).H;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot S;
  std::lock_guard<SpinLock> Guard(Lock);
  S.Metrics.reserve(Entries.size());
  for (const auto &E : Entries) {
    MetricSample M;
    M.Name = E->Name;
    M.Help = E->Help;
    M.Type = E->Type;
    switch (E->Type) {
    case MetricType::Counter:
      M.Value = static_cast<double>(E->C->value());
      break;
    case MetricType::Gauge:
      M.Value = E->G->value();
      break;
    case MetricType::Histogram:
      M.Buckets = E->H->bucketCounts();
      M.Sum = E->H->sum();
      M.Count = E->H->count();
      break;
    }
    S.Metrics.push_back(std::move(M));
  }
  return S;
}

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry Registry;
  return Registry;
}
