//===- obs/Obs.h - Runtime-gated tracing front end -------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-compiled, runtime-gated observability: span/counter/gauge tracing
/// for the task runtime, the checker hot phases, and DPST/arena growth,
/// exported as Chrome trace-event JSON loadable in Perfetto
/// (`taskcheck --profile=PATH`).
///
/// Design constraints (DESIGN.md §9):
///  - With no session active, every instrumentation site must cost exactly
///    one relaxed load and one predicted-not-taken branch — no TLS lookup,
///    no clock read, no call.
///  - With a session active, a thread writes plain stores into its *own*
///    lock-free ring (obs/ObsRing.h); rings are drained only at
///    task-quiescent points, so the writer never synchronizes beyond one
///    release store per event.
///  - Per-access checker phases are too hot for two clock reads each, so
///    they use *sampled* spans: every Nth occurrence is timed, the rest
///    cost one thread-local counter increment; the exported span carries
///    its sampling factor.
///
/// Usage:
/// \code
///   obs::beginSession({});
///   obs::addGauge("gauge/dpst-nodes", [&] { return double(Tree.size()); });
///   { AVC_OBS_SPAN(obs::Cat::Runtime, "task/execute", Id); ...work... }
///   obs::endSession("run.trace.json"); // drain + Perfetto export
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef AVC_OBS_OBS_H
#define AVC_OBS_OBS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/ObsRing.h"
#include "support/Compiler.h"

namespace avc {
namespace obs {

//===----------------------------------------------------------------------===//
// Gating
//===----------------------------------------------------------------------===//

/// Nonzero while a session is recording. Relaxed loads are sufficient:
/// events racing a begin/end transition are either captured or not, and
/// session teardown only drains at task quiescence.
extern std::atomic<uint32_t> GEnabled;

/// The whole disabled-mode cost: one relaxed load + one predicted branch.
AVC_ALWAYS_INLINE bool enabled() {
  return AVC_UNLIKELY(GEnabled.load(std::memory_order_relaxed) != 0);
}

//===----------------------------------------------------------------------===//
// Recording (out of line; called only when enabled)
//===----------------------------------------------------------------------===//

/// Binds this thread to the active session on first use (allocating its
/// ring) and appends one event. Safe to call when the session raced to an
/// end — the event lands in a retired ring and is ignored.
void record(Phase Ph, Cat Category, const char *Name, uint64_t Value = 0);

/// Integer counter sample (Chrome "C" event).
AVC_ALWAYS_INLINE void counter(Cat Category, const char *Name,
                               uint64_t Value) {
  if (enabled())
    record(Phase::Counter, Category, Name, Value);
}

/// Point event (Chrome "i" event).
AVC_ALWAYS_INLINE void instant(Cat Category, const char *Name,
                               uint64_t Value = 0) {
  if (enabled())
    record(Phase::Instant, Category, Name, Value);
}

/// RAII span: Begin on construction, End on destruction. The constructor
/// decides once; the destructor branches on a local, so a session ending
/// mid-span still emits the matching End (into a retired ring at worst).
class SpanGuard {
public:
  AVC_ALWAYS_INLINE SpanGuard(Cat Category, const char *Name,
                              uint64_t Value = 0) {
    if (AVC_LIKELY(!enabled()))
      return;
    this->Name = Name;
    this->Category = Category;
    record(Phase::Begin, Category, Name, Value);
  }

  AVC_ALWAYS_INLINE ~SpanGuard() {
    if (AVC_UNLIKELY(Name != nullptr))
      record(Phase::End, Category, Name);
  }

  SpanGuard(const SpanGuard &) = delete;
  SpanGuard &operator=(const SpanGuard &) = delete;

private:
  const char *Name = nullptr;
  Cat Category = Cat::Runtime;
};

/// Sampled span for per-access hot phases: times every \p SampleEvery-th
/// occurrence (a power of two) at this call site on this thread; the other
/// occurrences cost one thread-local counter increment. The Begin event's
/// Value carries the sampling factor so the exporter can label the span.
class SampledSpanGuard {
public:
  AVC_ALWAYS_INLINE SampledSpanGuard(Cat Category, const char *Name,
                                     uint32_t &SiteCounter,
                                     uint32_t SampleEvery) {
    if (AVC_LIKELY(!enabled()))
      return;
    if ((SiteCounter++ & (SampleEvery - 1)) != 0)
      return;
    this->Name = Name;
    this->Category = Category;
    record(Phase::Begin, Category, Name, SampleEvery);
  }

  AVC_ALWAYS_INLINE ~SampledSpanGuard() {
    if (AVC_UNLIKELY(Name != nullptr))
      record(Phase::End, Category, Name);
  }

  SampledSpanGuard(const SampledSpanGuard &) = delete;
  SampledSpanGuard &operator=(const SampledSpanGuard &) = delete;

private:
  const char *Name = nullptr;
  Cat Category = Cat::Checker;
};

// Unique local names per call site (two-step expansion so __LINE__ pastes).
#define AVC_OBS_CONCAT_IMPL(A, B) A##B
#define AVC_OBS_CONCAT(A, B) AVC_OBS_CONCAT_IMPL(A, B)

/// Full span covering the enclosing scope.
#define AVC_OBS_SPAN(CATEGORY, NAME, ...)                                      \
  ::avc::obs::SpanGuard AVC_OBS_CONCAT(AvcObsSpan, __LINE__)(                  \
      CATEGORY, NAME, ##__VA_ARGS__)

/// Sampled span covering the enclosing scope; EVERY must be a power of two.
#define AVC_OBS_SPAN_SAMPLED(CATEGORY, NAME, EVERY)                            \
  static thread_local uint32_t AVC_OBS_CONCAT(AvcObsCtr, __LINE__) = 0;        \
  ::avc::obs::SampledSpanGuard AVC_OBS_CONCAT(AvcObsSpan, __LINE__)(           \
      CATEGORY, NAME, AVC_OBS_CONCAT(AvcObsCtr, __LINE__), EVERY)

/// Sampled point event: records every EVERY-th occurrence at this site.
#define AVC_OBS_INSTANT_SAMPLED(CATEGORY, NAME, EVERY)                         \
  do {                                                                         \
    if (::avc::obs::enabled()) {                                               \
      static thread_local uint32_t AVC_OBS_CONCAT(AvcObsCtr, __LINE__) = 0;    \
      if ((AVC_OBS_CONCAT(AvcObsCtr, __LINE__)++ & ((EVERY)-1)) == 0)          \
        ::avc::obs::record(::avc::obs::Phase::Instant, CATEGORY, NAME,         \
                           (EVERY));                                           \
    }                                                                          \
  } while (false)

//===----------------------------------------------------------------------===//
// Session lifecycle
//===----------------------------------------------------------------------===//

struct SessionOptions {
  /// Events retained per thread ring (rounded up to a power of two). At 32
  /// bytes per slot the default is 2 MiB per participating thread.
  size_t RingCapacity = size_t(1) << 16;
  /// Sample every registered gauge once per this many tick() calls
  /// (ToolContext ticks once per finished task, so single-threaded runs
  /// sample at deterministic points).
  uint32_t GaugePeriod = 64;
};

/// Starts recording. Returns false (with a message on stderr) if a session
/// is already active. Calibrates the per-event recording cost first so the
/// export can state its own overhead.
bool beginSession(const SessionOptions &Opts = SessionOptions());

/// True between beginSession and endSession/abandonSession.
bool sessionActive();

/// Registers a gauge sampled periodically into the profile as a counter
/// time series. The callback must be cheap and safe to run concurrently
/// with task execution (read atomics, not locked structures). Register
/// before tasks run; no-op without an active session.
void addGauge(std::string Name, std::function<double()> Fn);

/// Deterministic gauge-sampling tick (one per finished task). Samples all
/// gauges every SessionOptions::GaugePeriod ticks. Callers gate on
/// enabled() so the disabled cost stays a single branch.
void tick();

/// Stops recording, drains every ring at what must be a task-quiescent
/// point, and writes Chrome trace-event JSON to \p Path. Returns false
/// (with a message on stderr) on I/O failure or if no session is active.
bool endSession(const std::string &Path);

/// Stops recording and discards all buffered events (failure paths).
void abandonSession();

/// Events recorded so far across all rings of the active session (0 when
/// inactive). For tests and self-accounting.
uint64_t sessionEventCount();

} // namespace obs
} // namespace avc

#endif // AVC_OBS_OBS_H
