//===- obs/Obs.cpp - Session lifecycle and event recording ----------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include <bit>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/Metrics.h"
#include "obs/ObsExport.h"
#include "support/SpinLock.h"
#include "support/Timing.h"

using namespace avc;
using namespace avc::obs;

std::atomic<uint32_t> avc::obs::GEnabled{0};

const char *avc::obs::catName(Cat C) {
  switch (C) {
  case Cat::Runtime:
    return "runtime";
  case Cat::Checker:
    return "checker";
  case Cat::Dpst:
    return "dpst";
  case Cat::Gauge:
    return "gauge";
  case Cat::Obs:
    return "obs";
  }
  return "unknown";
}

namespace {

/// One profiling session: the thread rings, the gauge registry, and the
/// self-accounting calibration.
struct Session {
  SessionOptions Opts;
  uint64_t Id = 0;
  uint64_t EpochNs = 0;
  double RecordNsPerEvent = 0;
  /// Guards ring registration (rare: once per participating thread) and
  /// gauge registration (setup time only).
  SpinLock Lock;
  std::vector<std::unique_ptr<Ring>> Rings;
  std::vector<std::pair<std::string, std::function<double()>>> Gauges;
  std::atomic<uint64_t> Ticks{0};
};

/// The active session. Ended sessions move to GRetired instead of being
/// freed: a thread that loaded the session pointer just before the end
/// transition may still complete one record() into a retired ring, which
/// must stay valid memory. One small leak per profiled run, reclaimed at
/// process exit.
std::atomic<Session *> GActive{nullptr};
std::mutex GLifecycleMutex;
std::vector<std::unique_ptr<Session>> GRetired;
uint64_t GNextSessionId = 1;

thread_local Ring *TlsRing = nullptr;
thread_local uint64_t TlsSessionId = 0;

/// Times a batch of representative record operations (clock read + ring
/// push) so the export can state the tracer's own overhead.
double calibrateRecordCost() {
  Ring Scratch(1024, /*Tid=*/0);
  constexpr int Batch = 4096;
  uint64_t T0 = nowNanos();
  for (int I = 0; I < Batch; ++I) {
    Event E;
    E.Ts = nowNanos() - T0;
    E.Name = "obs/calibrate";
    E.Value = static_cast<uint64_t>(I);
    E.Ph = Phase::Instant;
    E.Category = Cat::Obs;
    Scratch.push(E);
  }
  uint64_t T1 = nowNanos();
  return double(T1 - T0) / Batch;
}

/// Samples every registered gauge once into the calling thread's ring.
void sampleGauges(Session &S) {
  for (const auto &G : S.Gauges)
    record(Phase::Gauge, Cat::Gauge, G.first.c_str(),
           std::bit_cast<uint64_t>(G.second()));
}

} // namespace

void avc::obs::record(Phase Ph, Cat Category, const char *Name,
                      uint64_t Value) {
  Session *S = GActive.load(std::memory_order_acquire);
  if (AVC_UNLIKELY(S == nullptr))
    return; // raced with session end; drop
  if (AVC_UNLIKELY(TlsSessionId != S->Id)) {
    std::lock_guard<SpinLock> Guard(S->Lock);
    S->Rings.push_back(std::make_unique<Ring>(
        S->Opts.RingCapacity, static_cast<uint32_t>(S->Rings.size() + 1)));
    TlsRing = S->Rings.back().get();
    TlsSessionId = S->Id;
  }
  Event E;
  E.Ts = nowNanos() - S->EpochNs;
  E.Name = Name;
  E.Value = Value;
  E.Ph = Ph;
  E.Category = Category;
  TlsRing->push(E);
}

bool avc::obs::beginSession(const SessionOptions &Opts) {
  std::lock_guard<std::mutex> Guard(GLifecycleMutex);
  if (GActive.load(std::memory_order_relaxed) != nullptr) {
    std::fprintf(stderr,
                 "obs: beginSession while a session is active; ignored\n");
    return false;
  }
  auto S = std::make_unique<Session>();
  S->Opts = Opts;
  S->Id = GNextSessionId++;
  S->RecordNsPerEvent = calibrateRecordCost();
  S->EpochNs = nowNanos();
  GActive.store(S.get(), std::memory_order_release);
  GRetired.push_back(std::move(S)); // owner of record; active until ended
  GEnabled.store(1, std::memory_order_release);
  return true;
}

bool avc::obs::sessionActive() {
  return GActive.load(std::memory_order_acquire) != nullptr;
}

void avc::obs::addGauge(std::string Name, std::function<double()> Fn) {
  Session *S = GActive.load(std::memory_order_acquire);
  if (!S)
    return;
  std::lock_guard<SpinLock> Guard(S->Lock);
  S->Gauges.emplace_back(std::move(Name), std::move(Fn));
}

void avc::obs::tick() {
  Session *S = GActive.load(std::memory_order_acquire);
  if (AVC_UNLIKELY(S == nullptr) || S->Gauges.empty())
    return;
  uint64_t T = S->Ticks.fetch_add(1, std::memory_order_relaxed) + 1;
  if (T % S->Opts.GaugePeriod != 0)
    return;
  sampleGauges(*S);
}

uint64_t avc::obs::sessionEventCount() {
  Session *S = GActive.load(std::memory_order_acquire);
  if (!S)
    return 0;
  std::lock_guard<SpinLock> Guard(S->Lock);
  uint64_t Total = 0;
  for (const auto &R : S->Rings)
    Total += R->pushed();
  return Total;
}

bool avc::obs::endSession(const std::string &Path) {
  std::lock_guard<std::mutex> Guard(GLifecycleMutex);
  Session *S = GActive.load(std::memory_order_acquire);
  if (!S) {
    std::fprintf(stderr, "obs: endSession without an active session\n");
    return false;
  }
  // Final gauge sample while recording is still live, so every gauge series
  // covers the whole run.
  sampleGauges(*S);
  uint64_t WallNs = nowNanos() - S->EpochNs;

  // Stop recording, then detach. The caller guarantees task quiescence, so
  // after this no ring gains events we would miss.
  GEnabled.store(0, std::memory_order_release);
  GActive.store(nullptr, std::memory_order_release);

  Timer DrainTimer;
  std::vector<ExportEvent> Events;
  ExportSummary Summary;
  Summary.WallNs = WallNs;
  Summary.RecordNsPerEvent = S->RecordNsPerEvent;
  {
    std::lock_guard<SpinLock> RingGuard(S->Lock);
    for (auto &R : S->Rings) {
      uint32_t Tid = R->Tid;
      R->drain([&](const Event &E) { Events.push_back({E, Tid}); });
      Summary.EventsRecorded += R->pushed();
      Summary.EventsDropped += R->dropped();
    }
  }
  Summary.EventsOrphaned = sanitizeSpans(Events);
  Summary.DrainNs = DrainTimer.elapsedNanos();

  // Wraparound losses were previously visible only in the trace summary;
  // export them so a serve deployment can alert on sustained drop.
  metrics::MetricsRegistry::instance()
      .counter(metrics::names::ObsRingDroppedTotal,
               "Observability ring events lost to wraparound.")
      .add(Summary.EventsDropped);

  if (!writeChromeTrace(Path, Events, Summary))
    return false;
  std::printf("profile: wrote %s (%llu events, %llu dropped, ~%.2f%% "
              "estimated tracing overhead)\n",
              Path.c_str(),
              static_cast<unsigned long long>(Summary.EventsRecorded),
              static_cast<unsigned long long>(Summary.EventsDropped),
              Summary.estimatedOverheadPct());
  return true;
}

void avc::obs::abandonSession() {
  std::lock_guard<std::mutex> Guard(GLifecycleMutex);
  if (GActive.load(std::memory_order_relaxed) == nullptr)
    return;
  GEnabled.store(0, std::memory_order_release);
  GActive.store(nullptr, std::memory_order_release);
}
