//===- obs/MetricsExport.cpp - Prometheus/JSON/NDJSON writers -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsExport.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "support/JsonReport.h"

using namespace avc;
using namespace avc::metrics;

namespace {

/// Prometheus sample values: integral doubles render without an exponent
/// or trailing zeros (counters read as counts), everything else as %.9g.
std::string formatValue(double V) {
  char Buffer[48];
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 1e15)
    std::snprintf(Buffer, sizeof(Buffer), "%" PRId64,
                  static_cast<int64_t>(V));
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.9g", V);
  return Buffer;
}

std::string formatBound(double Bound) {
  char Buffer[48];
  std::snprintf(Buffer, sizeof(Buffer), "%.9g", Bound);
  return Buffer;
}

const char *typeName(MetricType T) {
  switch (T) {
  case MetricType::Counter:
    return "counter";
  case MetricType::Gauge:
    return "gauge";
  case MetricType::Histogram:
    return "histogram";
  }
  return "untyped";
}

} // namespace

std::string avc::metrics::toPrometheusText(const Snapshot &S) {
  std::string Out;
  for (const MetricSample &M : S.Metrics) {
    Out += "# HELP " + M.Name + " " + M.Help + "\n";
    Out += "# TYPE " + M.Name + " ";
    Out += typeName(M.Type);
    Out += "\n";
    switch (M.Type) {
    case MetricType::Counter:
    case MetricType::Gauge:
      Out += M.Name + " " + formatValue(M.Value) + "\n";
      break;
    case MetricType::Histogram: {
      // Exposition buckets are cumulative; the snapshot stores raw
      // per-bucket counts with +Inf last.
      uint64_t Cumulative = 0;
      for (unsigned I = 0; I + 1 < M.Buckets.size(); ++I) {
        Cumulative += M.Buckets[I];
        Out += M.Name + "_bucket{le=\"" + formatBound(Histogram::bucketBound(I)) +
               "\"} " + formatValue(static_cast<double>(Cumulative)) + "\n";
      }
      if (!M.Buckets.empty())
        Cumulative += M.Buckets.back();
      Out += M.Name + "_bucket{le=\"+Inf\"} " +
             formatValue(static_cast<double>(Cumulative)) + "\n";
      Out += M.Name + "_sum " + formatValue(M.Sum) + "\n";
      Out += M.Name + "_count " + formatValue(static_cast<double>(M.Count)) +
             "\n";
      break;
    }
    }
  }
  return Out;
}

std::string avc::metrics::toJsonText(const Snapshot &S) {
  std::string Out = "{\"metrics\": [";
  bool FirstMetric = true;
  for (const MetricSample &M : S.Metrics) {
    if (!FirstMetric)
      Out += ",";
    FirstMetric = false;
    Out += "\n  {\"name\": " + jsonQuote(M.Name) +
           ", \"type\": " + jsonQuote(typeName(M.Type)) +
           ", \"help\": " + jsonQuote(M.Help);
    switch (M.Type) {
    case MetricType::Counter:
    case MetricType::Gauge:
      Out += ", \"value\": " + jsonNumber(M.Value);
      break;
    case MetricType::Histogram: {
      Out += ", \"sum\": " + jsonNumber(M.Sum) +
             ", \"count\": " + jsonNumber(static_cast<double>(M.Count)) +
             ", \"buckets\": [";
      uint64_t Cumulative = 0;
      for (unsigned I = 0; I < M.Buckets.size(); ++I) {
        Cumulative += M.Buckets[I];
        bool Last = I + 1 == M.Buckets.size();
        Out += std::string(I ? ", " : "") + "{\"le\": " +
               (Last ? std::string("\"+Inf\"")
                     : jsonNumber(Histogram::bucketBound(I))) +
               ", \"count\": " + jsonNumber(static_cast<double>(Cumulative)) +
               "}";
      }
      Out += "]";
      break;
    }
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

bool avc::metrics::writeFileAtomic(const std::string &Path,
                                   const std::string &Contents) {
  std::string TmpPath =
      Path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE *F = std::fopen(TmpPath.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "metrics: cannot open %s: %s\n", TmpPath.c_str(),
                 std::strerror(errno));
    return false;
  }
  bool Ok = std::fwrite(Contents.data(), 1, Contents.size(), F) ==
            Contents.size();
  Ok = std::fflush(F) == 0 && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    std::fprintf(stderr, "metrics: short write to %s\n", TmpPath.c_str());
    std::remove(TmpPath.c_str());
    return false;
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::fprintf(stderr, "metrics: rename %s -> %s failed: %s\n",
                 TmpPath.c_str(), Path.c_str(), std::strerror(errno));
    std::remove(TmpPath.c_str());
    return false;
  }
  return true;
}

NdjsonWriter::NdjsonWriter(const std::string &Path) {
  Out = std::fopen(Path.c_str(), "ab");
  if (!Out)
    std::fprintf(stderr, "metrics: cannot open NDJSON log %s: %s\n",
                 Path.c_str(), std::strerror(errno));
}

NdjsonWriter::~NdjsonWriter() {
  if (Out)
    std::fclose(Out);
}

NdjsonWriter::Row &NdjsonWriter::Row::field(const std::string &Key,
                                            const std::string &Value) {
  Fields.push_back({Key, jsonQuote(Value)});
  return *this;
}

NdjsonWriter::Row &NdjsonWriter::Row::field(const std::string &Key,
                                            double Value) {
  Fields.push_back({Key, jsonNumber(Value)});
  return *this;
}

NdjsonWriter::Row &NdjsonWriter::Row::field(const std::string &Key,
                                            uint64_t Value) {
  Fields.push_back({Key, std::to_string(Value)});
  return *this;
}

bool NdjsonWriter::append(const Row &R) {
  if (!Out)
    return false;
  std::string Line = "{";
  for (size_t I = 0; I < R.Fields.size(); ++I) {
    if (I)
      Line += ", ";
    Line += jsonQuote(R.Fields[I].first) + ": " + R.Fields[I].second;
  }
  Line += "}\n";
  bool Ok =
      std::fwrite(Line.data(), 1, Line.size(), Out) == Line.size();
  return std::fflush(Out) == 0 && Ok;
}
