//===- obs/ObsRing.h - Per-thread lossy event ring buffer ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage substrate of the observability layer (see obs/Obs.h): one
/// fixed-capacity ring of trivially-copyable trace events per thread. The
/// owning thread appends with plain stores and publishes with a single
/// release store of the head index; no CAS, no lock, no allocation on the
/// hot path (cxxtrace's per-thread ring design). The collector drains at
/// task-quiescent points only — after ToolContext::run has joined all task
/// work — so an acquire load of the head is the only synchronization a
/// drain needs (see DESIGN.md §9 "Drain protocol").
///
/// Lossy by design: when the writer laps the reader the *oldest* events are
/// overwritten and counted as dropped, so a profile of an over-long run
/// degrades into a suffix window instead of stalling the program.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_OBS_OBSRING_H
#define AVC_OBS_OBSRING_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "support/Compiler.h"

namespace avc {
namespace obs {

/// Span/counter event phases, mirroring the Chrome trace-event "ph" field
/// they export to.
enum class Phase : uint8_t {
  Begin,   ///< span open ("B")
  End,     ///< span close ("E")
  Counter, ///< integer counter sample ("C")
  Gauge,   ///< double-valued gauge sample ("C"; Value holds the bit pattern)
  Instant, ///< point event ("i")
};

/// Event categories, one per instrumented subsystem (the Chrome "cat"
/// field; Perfetto lets you filter on it).
enum class Cat : uint8_t {
  Runtime, ///< task spawn/steal/execute/finish-scope events
  Checker, ///< checker hot phases (shadow walk, promotion, violations)
  Dpst,    ///< parallelism queries and tree/arena growth
  Gauge,   ///< periodic gauge samples (footprints, hit rates)
  Obs,     ///< the tracer's own self-accounting
};

const char *catName(Cat C);

/// One trace event. Trivial and 32 bytes so a ring slot write is a handful
/// of plain stores; names are interned static strings (or session-owned
/// gauge names), never owned by the event.
struct Event {
  uint64_t Ts;      ///< nanoseconds since the session epoch
  const char *Name; ///< static (or session-lifetime) display name
  uint64_t Value;   ///< counter value / span argument / gauge double bits
  Phase Ph;
  Cat Category;
};

static_assert(sizeof(Event) <= 32, "ring slots should stay cache-lean");

/// Single-writer lossy ring of Events. The writer is the owning thread;
/// the reader is the collector, which must only drain while the writer is
/// quiescent (the release/acquire pair on Head then covers the slots).
class Ring {
public:
  /// \p Capacity is rounded up to a power of two.
  explicit Ring(size_t Capacity, uint32_t Tid) : Tid(Tid) {
    size_t Cap = 16;
    while (Cap < Capacity)
      Cap <<= 1;
    Slots.resize(Cap);
    Mask = Cap - 1;
  }

  Ring(const Ring &) = delete;
  Ring &operator=(const Ring &) = delete;

  /// Owner thread only: appends \p E, overwriting the oldest event when
  /// full. Plain slot stores, one release store to publish.
  AVC_ALWAYS_INLINE void push(const Event &E) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    Slots[H & Mask] = E;
    Head.store(H + 1, std::memory_order_release);
  }

  /// Collector only, at writer quiescence: invokes \p Sink(Event) for every
  /// retained event since the last drain, oldest first, and returns the
  /// number of events that were overwritten before this drain could see
  /// them.
  template <typename SinkT> uint64_t drain(SinkT &&Sink) {
    uint64_t H = Head.load(std::memory_order_acquire);
    uint64_t Capacity = Mask + 1;
    uint64_t Begin = Tail;
    if (H > Capacity && H - Capacity > Begin)
      Begin = H - Capacity; // writer lapped the reader: oldest events lost
    uint64_t DroppedNow = Begin - Tail;
    for (uint64_t I = Begin; I < H; ++I)
      Sink(Slots[I & Mask]);
    Tail = H;
    Dropped += DroppedNow;
    return DroppedNow;
  }

  /// Total events ever pushed (drained, pending, and dropped).
  uint64_t pushed() const { return Head.load(std::memory_order_acquire); }

  /// Cumulative events lost to wraparound across all drains.
  uint64_t dropped() const { return Dropped; }

  size_t capacity() const { return Mask + 1; }

  /// Small dense thread ordinal assigned at registration (the exported
  /// "tid" field).
  const uint32_t Tid;

private:
  std::vector<Event> Slots;
  uint64_t Mask = 0;
  std::atomic<uint64_t> Head{0};
  uint64_t Tail = 0;    // collector-owned read cursor
  uint64_t Dropped = 0; // collector-owned loss accounting
};

} // namespace obs
} // namespace avc

#endif // AVC_OBS_OBSRING_H
