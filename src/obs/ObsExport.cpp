//===- obs/ObsExport.cpp - Chrome trace-event JSON export -----------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/ObsExport.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <map>

#include "support/JsonReport.h"

using namespace avc;
using namespace avc::obs;

uint64_t avc::obs::sanitizeSpans(std::vector<ExportEvent> &Events) {
  // Per tid, match B/E in stream order (drain order is chronological per
  // ring). Wraparound can only cut a prefix of a ring, so mismatches are
  // End events whose Begin was overwritten, plus any Begin left open.
  std::vector<char> Keep(Events.size(), 1);
  std::map<uint32_t, std::vector<size_t>> OpenByTid;
  uint64_t Removed = 0;
  for (size_t I = 0; I < Events.size(); ++I) {
    const ExportEvent &EE = Events[I];
    if (EE.E.Ph == Phase::Begin) {
      OpenByTid[EE.Tid].push_back(I);
    } else if (EE.E.Ph == Phase::End) {
      std::vector<size_t> &Open = OpenByTid[EE.Tid];
      if (!Open.empty() && Events[Open.back()].E.Name == EE.E.Name) {
        Open.pop_back();
      } else {
        Keep[I] = 0; // orphan End: its Begin fell off the ring
        ++Removed;
      }
    }
  }
  for (const auto &Entry : OpenByTid)
    for (size_t I : Entry.second) {
      Keep[I] = 0; // Begin still open at drain
      ++Removed;
    }
  if (Removed == 0)
    return 0;
  size_t Out = 0;
  for (size_t I = 0; I < Events.size(); ++I)
    if (Keep[I])
      Events[Out++] = Events[I];
  Events.resize(Out);
  return Removed;
}

namespace {

/// Timestamp in microseconds, the unit the trace-event format expects.
std::string formatTs(uint64_t Ns) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.3f", double(Ns) / 1e3);
  return std::string(Buffer);
}

void writeEvent(std::ofstream &Out, const ExportEvent &EE) {
  const Event &E = EE.E;
  Out << "    {\"name\": " << jsonQuote(E.Name) << ", \"cat\": \""
      << catName(E.Category) << "\", \"ph\": \"";
  switch (E.Ph) {
  case Phase::Begin:
    Out << 'B';
    break;
  case Phase::End:
    Out << 'E';
    break;
  case Phase::Counter:
  case Phase::Gauge:
    Out << 'C';
    break;
  case Phase::Instant:
    Out << 'i';
    break;
  }
  Out << "\", \"ts\": " << formatTs(E.Ts) << ", \"pid\": 1, \"tid\": "
      << EE.Tid;
  switch (E.Ph) {
  case Phase::Begin:
  case Phase::Instant:
    if (E.Ph == Phase::Instant)
      Out << ", \"s\": \"t\"";
    if (E.Value != 0)
      Out << ", \"args\": {\"value\": " << E.Value << "}";
    break;
  case Phase::Counter:
    Out << ", \"args\": {\"value\": " << E.Value << "}";
    break;
  case Phase::Gauge:
    Out << ", \"args\": {\"value\": "
        << jsonNumber(std::bit_cast<double>(E.Value)) << "}";
    break;
  case Phase::End:
    break;
  }
  Out << "},\n";
}

} // namespace

bool avc::obs::writeChromeTrace(const std::string &Path,
                                std::vector<ExportEvent> &Events,
                                const ExportSummary &Summary) {
  // Perfetto does not require global timestamp order, but a sorted file is
  // trivially diffable and lets the validator check monotonicity. Stable:
  // drain order breaks ties, preserving per-thread B/E nesting.
  std::stable_sort(Events.begin(), Events.end(),
                   [](const ExportEvent &A, const ExportEvent &B) {
                     return A.E.Ts < B.E.Ts;
                   });

  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }

  Out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  // Metadata: process name plus one thread_name row per ring tid.
  Out << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"taskcheck\"}},\n";
  uint32_t MaxTid = 0;
  for (const ExportEvent &EE : Events)
    MaxTid = std::max(MaxTid, EE.Tid);
  for (uint32_t Tid = 1; Tid <= MaxTid; ++Tid)
    Out << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": "
        << Tid << ", \"args\": {\"name\": \"worker-" << Tid << "\"}},\n";

  for (const ExportEvent &EE : Events)
    writeEvent(Out, EE);

  // Self-accounting span: where the tracer itself spent time, and its
  // estimate of the recording overhead paid *during* the run. Complete
  // ("X") event on tid 0 so it never perturbs worker tracks.
  Out << "    {\"name\": \"obs/self-accounting\", \"cat\": \"obs\", "
         "\"ph\": \"X\", \"ts\": "
      << formatTs(Summary.WallNs) << ", \"dur\": "
      << formatTs(Summary.DrainNs) << ", \"pid\": 1, \"tid\": 0, "
      << "\"args\": {\"events_recorded\": " << Summary.EventsRecorded
      << ", \"events_dropped\": " << Summary.EventsDropped
      << ", \"events_orphaned\": " << Summary.EventsOrphaned
      << ", \"record_ns_per_event\": "
      << jsonNumber(Summary.RecordNsPerEvent)
      << ", \"estimated_overhead_pct\": "
      << jsonNumber(Summary.estimatedOverheadPct()) << "}}\n";

  Out << "  ],\n  \"otherData\": {\"events\": " << Summary.EventsRecorded
      << ", \"dropped\": " << Summary.EventsDropped
      << ", \"wall_ms\": " << jsonNumber(double(Summary.WallNs) / 1e6)
      << ", \"estimated_overhead_pct\": "
      << jsonNumber(Summary.estimatedOverheadPct()) << "}\n}\n";
  return Out.good();
}
