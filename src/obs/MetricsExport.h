//===- obs/MetricsExport.h - Prometheus/JSON/NDJSON writers ----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of metrics snapshots (obs/Metrics.h) for the serve
/// daemon's scrape surface: Prometheus text exposition format (the file a
/// node_exporter-style textfile collector or a sidecar serves), a JSON
/// snapshot with the same content for ad-hoc tooling, and an append-only
/// NDJSON event log for per-trace results. All file writes that replace a
/// previous snapshot go through writeFileAtomic (write temp + rename), so
/// a scraper never reads a torn file.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_OBS_METRICSEXPORT_H
#define AVC_OBS_METRICSEXPORT_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/Metrics.h"

namespace avc {
namespace metrics {

/// Renders \p S in the Prometheus text exposition format: per metric a
/// `# HELP` line, a `# TYPE` line, then the samples (histograms expand to
/// cumulative `_bucket{le="..."}` samples plus `_sum`/`_count`).
std::string toPrometheusText(const Snapshot &S);

/// Renders \p S as one JSON object {"metrics": [...]} carrying the same
/// content as the Prometheus view.
std::string toJsonText(const Snapshot &S);

/// Writes \p Contents to \p Path via a temporary file in the same
/// directory followed by an atomic rename; readers see either the old or
/// the new contents, never a prefix. Returns false with a message on
/// stderr on failure.
bool writeFileAtomic(const std::string &Path, const std::string &Contents);

/// Append-only newline-delimited-JSON log: one flat object per row. Used
/// by serve for the per-trace result log; each append is one buffered
/// write + flush, so rows are whole lines even if the process dies
/// mid-run.
class NdjsonWriter {
public:
  /// Opens \p Path for append. ok() reports whether the stream is usable.
  explicit NdjsonWriter(const std::string &Path);
  ~NdjsonWriter();

  NdjsonWriter(const NdjsonWriter &) = delete;
  NdjsonWriter &operator=(const NdjsonWriter &) = delete;

  bool ok() const { return Out != nullptr; }

  class Row {
  public:
    Row &field(const std::string &Key, const std::string &Value);
    Row &field(const std::string &Key, double Value);
    /// Full-precision integers (timestamps overflow double's %.6g).
    Row &field(const std::string &Key, uint64_t Value);

  private:
    friend class NdjsonWriter;
    std::vector<std::pair<std::string, std::string>> Fields;
  };

  /// Serializes \p R as one line and flushes. Returns false on I/O error.
  bool append(const Row &R);

private:
  std::FILE *Out = nullptr;
};

} // namespace metrics
} // namespace avc

#endif // AVC_OBS_METRICSEXPORT_H
