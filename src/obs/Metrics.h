//===- obs/Metrics.h - Process-wide aggregated metrics registry -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregation half of the observability layer. Where obs/Obs.h records
/// *per-run traces* (what happened, in order, for one execution), this
/// registry keeps *cumulative counters, gauges, and latency histograms* —
/// the shape a long-running `taskcheck serve` daemon exposes to scrapers.
///
/// Disciplines (DESIGN.md §14):
///  - A counter increment is one relaxed fetch_add on a cacheline-aligned
///    shard keyed by thread ordinal (the §10 sharded-stats discipline), so
///    the hot path never contends and never takes a lock.
///  - Metrics are registered once (spinlock-guarded, name-keyed) and
///    referenced by stable pointer afterwards; registration rejects names
///    outside the Prometheus grammar and type mismatches loudly.
///  - snapshot() folds every shard under the registration lock at a
///    quiescent-enough point (scrape/rewrite intervals), so readers never
///    slow writers down.
///
/// Usage:
/// \code
///   metrics::Counter &Steals = metrics::MetricsRegistry::instance().counter(
///       "taskcheck_runtime_steals_total", "Successful deque steals.");
///   Steals.inc();                             // hot path
///   metrics::Snapshot S = registry.snapshot();// scrape path
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef AVC_OBS_METRICS_H
#define AVC_OBS_METRICS_H

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/Compiler.h"
#include "support/SpinLock.h"

namespace avc {
namespace metrics {

/// Dense per-thread ordinal for shard selection. Assigned on first use,
/// cached in a thread_local; one relaxed load afterwards.
unsigned threadOrdinal();

/// Shards per metric: enough that 8-16 workers rarely collide, small
/// enough that a counter stays cache-resident (16 x 64 B = 1 KiB).
inline constexpr unsigned NumMetricShards = 16;

enum class MetricType : uint8_t { Counter, Gauge, Histogram };

/// Monotonically increasing count, sharded per thread. The only hot-path
/// metric type: inc()/add() cost one relaxed fetch_add on the caller's
/// shard.
class Counter {
public:
  AVC_ALWAYS_INLINE void add(uint64_t Delta) {
    Shards[threadOrdinal() & (NumMetricShards - 1)].Value.fetch_add(
        Delta, std::memory_order_relaxed);
  }
  AVC_ALWAYS_INLINE void inc() { add(1); }

  /// Folded total across shards (scrape path).
  uint64_t value() const {
    uint64_t Total = 0;
    for (const Shard &S : Shards)
      Total += S.Value.load(std::memory_order_relaxed);
    return Total;
  }

private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> Value{0};
  };
  Shard Shards[NumMetricShards];
};

/// Point-in-time double value (queue depth, uptime, footprints). set() is
/// a single relaxed store; last writer wins.
class Gauge {
public:
  void set(double V) {
    Bits.store(std::bit_cast<uint64_t>(V), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(Bits.load(std::memory_order_relaxed));
  }

private:
  std::atomic<uint64_t> Bits{std::bit_cast<uint64_t>(0.0)};
};

/// Fixed-bucket log-scale latency histogram in seconds (Prometheus base
/// unit). Buckets are powers of two starting at 1 us: bucket i counts
/// observations <= 2^i microseconds, the last bucket is +Inf. observe()
/// is per-trace / per-task granularity, so plain relaxed fetch_adds on
/// the bucket array suffice — no sharding needed.
class Histogram {
public:
  /// 2^0 us .. 2^23 us (~8.4 s) + implicit +Inf.
  static constexpr unsigned NumBuckets = 24;

  /// Upper bound of finite bucket \p I in seconds.
  static double bucketBound(unsigned I) {
    return std::ldexp(1e-6, static_cast<int>(I));
  }

  void observe(double Seconds) {
    if (Seconds < 0)
      Seconds = 0;
    double Us = Seconds * 1e6;
    unsigned Index;
    if (Us <= 1.0) {
      Index = 0;
    } else {
      uint64_t Ceiled = static_cast<uint64_t>(std::ceil(Us));
      unsigned Log2 = static_cast<unsigned>(std::bit_width(Ceiled - 1));
      Index = Log2 < NumBuckets ? Log2 : NumBuckets; // NumBuckets == +Inf
    }
    if (Index < NumBuckets)
      Buckets[Index].fetch_add(1, std::memory_order_relaxed);
    else
      Overflow.fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is a CAS loop; observation rate is
    // per-trace, not per-access, so contention is irrelevant.
    Sum.fetch_add(Seconds, std::memory_order_relaxed);
  }

  /// Per-bucket (non-cumulative) counts; [NumBuckets] is +Inf.
  std::vector<uint64_t> bucketCounts() const {
    std::vector<uint64_t> Out(NumBuckets + 1);
    for (unsigned I = 0; I < NumBuckets; ++I)
      Out[I] = Buckets[I].load(std::memory_order_relaxed);
    Out[NumBuckets] = Overflow.load(std::memory_order_relaxed);
    return Out;
  }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Overflow{0};
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
};

/// Folded view of one metric at snapshot time.
struct MetricSample {
  std::string Name;
  std::string Help;
  MetricType Type = MetricType::Counter;
  /// Counter total or gauge value.
  double Value = 0;
  /// Histogram payload (empty otherwise): per-bucket counts with the +Inf
  /// bucket last, plus sum/count.
  std::vector<uint64_t> Buckets;
  double Sum = 0;
  uint64_t Count = 0;
};

/// A consistent-enough view of every registered metric, in registration
/// order (scrapes want stable output).
struct Snapshot {
  std::vector<MetricSample> Metrics;

  /// The sample named \p Name, or null.
  const MetricSample *find(const std::string &Name) const;
};

/// True iff \p Name matches the Prometheus metric-name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
bool isValidMetricName(const std::string &Name);

/// Name-keyed registry of counters, gauges, and histograms. instance() is
/// the process-wide registry every subsystem publishes into; tests build
/// private registries for isolation. Registration is get-or-create: the
/// second caller of counter("x", ...) receives the first caller's counter.
/// A name reused with a different metric type aborts — that is a wiring
/// bug, never a runtime condition.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(const std::string &Name, const std::string &Help);
  Gauge &gauge(const std::string &Name, const std::string &Help);
  Histogram &histogram(const std::string &Name, const std::string &Help);

  /// Folds every metric. Safe to call concurrently with writers (relaxed
  /// reads may miss in-flight increments, never tear).
  Snapshot snapshot() const;

  /// The process-wide registry.
  static MetricsRegistry &instance();

private:
  struct Entry {
    std::string Name;
    std::string Help;
    MetricType Type;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  Entry &getOrCreate(const std::string &Name, const std::string &Help,
                     MetricType Type);

  mutable SpinLock Lock;
  std::vector<std::unique_ptr<Entry>> Entries;
};

//===----------------------------------------------------------------------===//
// Timed-section gating
//===----------------------------------------------------------------------===//

/// Counters always run (one relaxed shard increment, ~free); *timed*
/// metrics (the task-latency histogram needs two clock reads per task)
/// are gated so benchmark runs that never scrape pay nothing. serve
/// enables this for its lifetime.
extern std::atomic<uint32_t> GTimingEnabled;

AVC_ALWAYS_INLINE bool timingEnabled() {
  return AVC_UNLIKELY(GTimingEnabled.load(std::memory_order_relaxed) != 0);
}

void setTimingEnabled(bool Enabled);

//===----------------------------------------------------------------------===//
// Canonical metric names
//===----------------------------------------------------------------------===//
//
// Shared by the instrumentation sites, the serve loop's eager registration
// (so a scrape sees every headline metric even before the first trace),
// and tools/validate_metrics.py's required-metric whitelist.

namespace names {
// Trace checking (BatchReplay / serve).
inline constexpr const char *TracesCheckedTotal =
    "taskcheck_traces_checked_total";
inline constexpr const char *TracesFailedTotal =
    "taskcheck_traces_failed_total";
inline constexpr const char *TracesFlaggedTotal =
    "taskcheck_traces_flagged_total";
inline constexpr const char *TraceEventsTotal = "taskcheck_trace_events_total";
inline constexpr const char *ViolationsTotal =
    "taskcheck_trace_violations_total";
inline constexpr const char *TraceDecodeSeconds =
    "taskcheck_trace_decode_seconds";
inline constexpr const char *TraceCheckSeconds =
    "taskcheck_trace_check_seconds";
inline constexpr const char *TraceTotalSeconds =
    "taskcheck_trace_total_seconds";
// Serve loop health.
inline constexpr const char *ServeQueueDepth = "taskcheck_serve_queue_depth";
inline constexpr const char *ServeHeartbeatsTotal =
    "taskcheck_serve_heartbeats_total";
inline constexpr const char *ServeClaimRacesTotal =
    "taskcheck_serve_claim_races_total";
inline constexpr const char *ServeUptimeSeconds =
    "taskcheck_serve_uptime_seconds";
// Task runtime.
inline constexpr const char *RuntimeTasksTotal =
    "taskcheck_runtime_tasks_total";
inline constexpr const char *RuntimeStealsTotal =
    "taskcheck_runtime_steals_total";
inline constexpr const char *RuntimeDequeGrowthTotal =
    "taskcheck_runtime_deque_growth_total";
inline constexpr const char *RuntimeTaskLatencySeconds =
    "taskcheck_runtime_task_latency_seconds";
// Trace recorder.
inline constexpr const char *RecorderEventsTotal =
    "taskcheck_recorder_events_total";
inline constexpr const char *RecorderRunsTotal =
    "taskcheck_recorder_runs_total";
inline constexpr const char *RecorderContendedMergesTotal =
    "taskcheck_recorder_contended_merges_total";
// Observability ring loss (ISSUE satellite: wraparound drops were
// previously internal-only).
inline constexpr const char *ObsRingDroppedTotal = "obs_ring_dropped_total";
} // namespace names

} // namespace metrics
} // namespace avc

#endif // AVC_OBS_METRICS_H
