//===- analysis/SiteRegistry.h - Process-wide site registration -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registration side of the pre-analysis: every Tracked<T> constructor
/// records its location here (one *site*), and TrackedArray records a
/// single bulk range for the whole array instead of one site per element
/// (the per-element constructors are suppressed with a BulkScope). Tools
/// pull a snapshot of the live sites at program start and receive later
/// registrations through ExecutionObserver::onSiteRegister.
///
/// A process-wide registry (rather than a per-run one) mirrors how the
/// paper's instrumentation works: annotated locations exist independently
/// of any particular checked execution, and benchmark harnesses construct
/// workload data before the runtime starts. Destructors unregister their
/// sites so repeated runs in one process (benchmark reps) do not
/// accumulate stale ranges over reused heap addresses.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_ANALYSIS_SITEREGISTRY_H
#define AVC_ANALYSIS_SITEREGISTRY_H

#include <cstdint>
#include <vector>

#include "runtime/ExecutionObserver.h"
#include "support/SpinLock.h"

namespace avc {

/// Records the tracked sites of the process. Thread safe.
class SiteRegistry {
public:
  struct Entry {
    MemAddr Base = 0;
    uint64_t Size = 0;   ///< Bytes covered by the site.
    uint32_t Stride = 0; ///< Element stride (== Size for scalar sites).
    uint64_t Id = 0;
    bool Live = false;
  };

  /// The process-wide registry.
  static SiteRegistry &instance();

  /// Registers a site covering [Base, Base + Size); returns its id.
  uint64_t registerRange(MemAddr Base, uint64_t Size, uint32_t Stride);

  /// Tombstones the live site whose base address is \p Base (no-op if
  /// none; destruction order makes double-unregister harmless).
  void unregisterRange(MemAddr Base);

  /// The live entries, in registration order.
  std::vector<Entry> snapshot() const;

  size_t numLive() const;

  /// Suppresses per-element registration while a TrackedArray constructs
  /// or destroys its elements; the array registers one bulk range instead.
  class BulkScope {
  public:
    BulkScope() { ++depth(); }
    ~BulkScope() { --depth(); }
    BulkScope(const BulkScope &) = delete;
    BulkScope &operator=(const BulkScope &) = delete;
  };

  static bool bulkSuppressed() { return depth() != 0; }

private:
  static int &depth();

  mutable SpinLock Lock;
  std::vector<Entry> Entries; ///< Dead entries tombstoned, compacted lazily.
  uint64_t NextId = 1;
  size_t NumDead = 0;
};

} // namespace avc

#endif // AVC_ANALYSIS_SITEREGISTRY_H
