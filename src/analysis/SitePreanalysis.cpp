//===- analysis/SitePreanalysis.cpp - Per-site fast-path handlers ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/SitePreanalysis.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "analysis/SiteRegistry.h"

using namespace avc;

namespace {
/// Bytes assumed for a site discovered lazily from a bare access address
/// (raw trace replays register nothing up front). Matches the word-sized
/// access model of the instrumentation layer.
constexpr uint64_t LazySiteBytes = 8;
} // namespace

SitePreanalysis::~SitePreanalysis() = default;

void SitePreanalysis::noteProgramStart(TaskId RootTask) {
  Root = RootTask;
  SeqRegion.store(true, std::memory_order_relaxed);
  Phase.store(0, std::memory_order_relaxed);
  OpenByTag.clear();
  TotalOpen = 0;

  std::lock_guard<SpinLock> Guard(TableLock);
  for (const SiteRegistry::Entry &E : SiteRegistry::instance().snapshot()) {
    if (E.Id <= RegistrySeen)
      continue;
    RegistrySeen = std::max(RegistrySeen, E.Id);
    addRangeLocked(E.Base, E.Size, E.Stride);
  }
  publishLocked();
}

void SitePreanalysis::registerRange(MemAddr Base, uint64_t Size,
                                    uint32_t Stride) {
  std::lock_guard<SpinLock> Guard(TableLock);
  addRangeLocked(Base, Size, Stride);
  publishLocked();
}

void SitePreanalysis::markGrouped(const MemAddr *Members, size_t Count) {
  std::lock_guard<SpinLock> Guard(TableLock);
  for (size_t I = 0; I < Count; ++I) {
    MemAddr Addr = Members[I];
    GroupedAddrs.push_back(Addr);
    for (const TaskView::RangeRef &R : LiveRanges)
      if (Addr - R.Base < R.Size) {
        R.Rec->Flags.fetch_or(FlagGrouped, std::memory_order_relaxed);
        R.Rec->Action.store(uint8_t(SiteAction::Generic),
                            std::memory_order_relaxed);
      }
  }
}

void SitePreanalysis::adoptExact(const std::vector<ExactSiteClass> &Sites) {
  std::lock_guard<SpinLock> Guard(TableLock);
  ExactAdopted = true;
  for (const ExactSiteClass &S : Sites) {
    SiteRecord *Rec = addRangeLocked(S.Base, S.Size,
                                     static_cast<uint32_t>(S.Size));
    Rec->ExactClass.store(uint8_t(S.Class), std::memory_order_relaxed);
    Rec->SeqReads.store(S.SeqReads, std::memory_order_relaxed);
    Rec->SeqWrites.store(S.SeqWrites, std::memory_order_relaxed);
    Rec->NonSeqAccesses.store(
        static_cast<uint32_t>(
            std::min<uint64_t>(S.NonSeqReads + S.NonSeqWrites, ~0u)),
        std::memory_order_relaxed);
    Rec->NonSeqWrites.store(
        static_cast<uint32_t>(std::min<uint64_t>(S.NonSeqWrites, ~0u)),
        std::memory_order_relaxed);
    // Grouped sites stay pinned to the generic path regardless of the
    // exact verdict (group violations span member locations).
    if (!(Rec->Flags.load(std::memory_order_relaxed) & FlagGrouped))
      Rec->Action.store(uint8_t(S.Action), std::memory_order_relaxed);
  }
  publishLocked();
}

SitePreanalysis::SiteRecord *
SitePreanalysis::addRangeLocked(MemAddr Base, uint64_t Size, uint32_t Stride) {
  // Re-registration of a live range (program restart on the same tool, or
  // an exact adoption over registry-seeded records) reuses the record.
  for (const TaskView::RangeRef &R : LiveRanges)
    if (R.Base == Base && R.Size == Size)
      return R.Rec;
  // Address reuse: newer ranges shadow and retire overlapping older ones.
  // The retired record's action drops to Generic so a stale MRU reference
  // in some task falls through to the full path (always sound).
  for (size_t I = LiveRanges.size(); I-- > 0;) {
    TaskView::RangeRef &R = LiveRanges[I];
    if (Base < R.Base + R.Size && R.Base < Base + Size) {
      R.Rec->Action.store(uint8_t(SiteAction::Generic),
                          std::memory_order_relaxed);
      LiveRanges.erase(LiveRanges.begin() + static_cast<ptrdiff_t>(I));
    }
  }
  Records.push_back(std::make_unique<SiteRecord>());
  SiteRecord *Rec = Records.back().get();
  Rec->Base = Base;
  Rec->Size = Size;
  Rec->Stride = Stride ? Stride : static_cast<uint32_t>(Size);
  bool Grouped = groupedOverlapsLocked(Base, Size);
  if (Grouped)
    Rec->Flags.fetch_or(FlagGrouped, std::memory_order_relaxed);
  // Live modes open a warmup window; after an exact adoption (or for
  // grouped sites) the engine never speculates.
  bool Warm = !ExactAdopted && !Grouped && enabled();
  Rec->Action.store(uint8_t(Warm ? SiteAction::Warmup : SiteAction::Generic),
                    std::memory_order_relaxed);
  LiveRanges.push_back({Base, Size, Rec});
  return Rec;
}

bool SitePreanalysis::groupedOverlapsLocked(MemAddr Base,
                                            uint64_t Size) const {
  for (MemAddr Addr : GroupedAddrs)
    if (Addr - Base < Size)
      return true;
  return false;
}

void SitePreanalysis::publishLocked() {
  auto Next = std::make_unique<Snapshot>();
  Next->Ranges = LiveRanges;
  std::sort(Next->Ranges.begin(), Next->Ranges.end(),
            [](const TaskView::RangeRef &A, const TaskView::RangeRef &B) {
              return A.Base < B.Base;
            });
  Snap.store(Next.get(), std::memory_order_release);
  // Every published snapshot stays allocated: a concurrent resolveSlow may
  // still be reading a superseded one. Bounded by the number of (rare)
  // publish events.
  RetiredSnapshots.push_back(std::move(Next));
}

SitePreanalysis::SiteRecord *SitePreanalysis::resolveSlow(TaskView &View,
                                                          MemAddr Addr) {
  Snapshot *S = Snap.load(std::memory_order_acquire);
  auto It = std::upper_bound(
      S->Ranges.begin(), S->Ranges.end(), Addr,
      [](MemAddr A, const TaskView::RangeRef &R) { return A < R.Base; });
  SiteRecord *Rec = nullptr;
  if (It != S->Ranges.begin()) {
    const TaskView::RangeRef &R = *(It - 1);
    if (Addr - R.Base < R.Size) {
      View.Mru[View.MruNext++ % TaskView::NumMru] = R;
      return R.Rec;
    }
  }
  // Unregistered address (raw trace replay): create a scalar site lazily.
  {
    std::lock_guard<SpinLock> Guard(TableLock);
    Rec = addRangeLocked(Addr, LazySiteBytes,
                         static_cast<uint32_t>(LazySiteBytes));
    publishLocked();
  }
  View.Mru[View.MruNext++ % TaskView::NumMru] = {Rec->Base, Rec->Size, Rec};
  return Rec;
}

bool SitePreanalysis::gateSlow(TaskView &View, SiteRecord &Rec, SiteAction Act,
                               AccessKind Kind) {
  switch (Act) {
  case SiteAction::SkipAll:
    ++View.SiteSkips;
    return true;
  case SiteAction::SkipReads:
    if (Kind == AccessKind::Read) {
      Rec.LastSkipPhase.store(Phase.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
      ++View.SiteSkips;
      return true;
    }
    // Exact verdicts already proved no write is parallel with any access,
    // so a write here is expected and keeps the classification; only the
    // live-mode speculation has to retract on a write.
    if (!ExactAdopted)
      downgrade(Rec);
    return false;
  case SiteAction::Warmup:
    warmupCount(View, Rec, Kind);
    return false;
  case SiteAction::Generic:
    break;
  }
  return false;
}

void SitePreanalysis::warmupCount(TaskView &View, SiteRecord &Rec,
                                  AccessKind Kind) {
  // Writes count before the access total so the classifying access (the
  // one that observes N == threshold) sees every write processed so far;
  // the remaining race window is a single in-flight access and is part of
  // the documented speculation boundary (DESIGN.md §11).
  if (Kind == AccessKind::Write)
    Rec.NonSeqWrites.fetch_add(1, std::memory_order_relaxed);
  uint64_t Sig = heldSignature(View);
  uint64_t Expected = LockSigUnset;
  if (!Rec.LockSig.compare_exchange_strong(Expected, Sig,
                                           std::memory_order_relaxed) &&
      Expected != Sig)
    Rec.Flags.fetch_or(FlagLockSigMixed, std::memory_order_relaxed);
  uint32_t N = Rec.NonSeqAccesses.fetch_add(1, std::memory_order_relaxed) + 1;
  if (AVC_UNLIKELY(N == Opts.WarmupThreshold))
    classify(Rec);
}

void SitePreanalysis::classify(SiteRecord &Rec) {
  uint8_t Expected = uint8_t(SiteAction::Warmup);
  // Live mode can only speculate ReadOnlyAfterInit: SequentialOnly is a
  // whole-run property no prefix can establish, and FixedLockset proves
  // nothing under versioned lock tokens (reporting verdict only).
  bool SkipReads =
      Rec.NonSeqWrites.load(std::memory_order_relaxed) == 0 &&
      !(Rec.Flags.load(std::memory_order_relaxed) & FlagGrouped);
  if (SkipReads)
    Rec.Flags.fetch_or(FlagSpeculativeRO, std::memory_order_relaxed);
  Rec.Action.compare_exchange_strong(
      Expected,
      uint8_t(SkipReads ? SiteAction::SkipReads : SiteAction::Generic),
      std::memory_order_relaxed);
}

void SitePreanalysis::downgrade(SiteRecord &Rec) {
  uint8_t Expected = uint8_t(SiteAction::SkipReads);
  if (!Rec.Action.compare_exchange_strong(Expected,
                                          uint8_t(SiteAction::Generic),
                                          std::memory_order_relaxed))
    return; // Another writer already downgraded.
  Rec.Flags.fetch_or(FlagDowngraded, std::memory_order_relaxed);
  TotalDowngrades.fetch_add(1, std::memory_order_relaxed);
  // Invalidate every cached verdict: entries stamped while reads were
  // being skipped may encode "safe" against metadata those reads never
  // reached.
  DowngradeGen.fetch_add(1, std::memory_order_relaxed);
  // Cross-phase downgrades are lossless (a quiescent point separates the
  // write from every skipped read, so they are in series). A downgrade in
  // the same phase as a skipped read is the one place live speculation
  // can miss a violation.
  uint32_t Last = Rec.LastSkipPhase.load(std::memory_order_relaxed);
  if (Last != NoPhase && Last == Phase.load(std::memory_order_relaxed))
    TotalUnsafeDowngrades.fetch_add(1, std::memory_order_relaxed);
}

void SitePreanalysis::drainRootScope(const void *Tag) {
  auto It = OpenByTag.find(Tag);
  if (It != OpenByTag.end() && It->second != 0) {
    assert(TotalOpen >= It->second && "scope accounting out of sync");
    TotalOpen -= It->second;
    It->second = 0;
  }
  if (TotalOpen == 0 && !SeqRegion.load(std::memory_order_relaxed)) {
    // Order matters for the downgrade proof: the phase advances before
    // any post-quiescent access can stamp or compare it.
    Phase.fetch_add(1, std::memory_order_relaxed);
    SeqRegion.store(true, std::memory_order_relaxed);
  }
}

SitePreanalysis::SiteRecord *SitePreanalysis::findSite(MemAddr Addr) {
  Snapshot *S = Snap.load(std::memory_order_acquire);
  auto It = std::upper_bound(
      S->Ranges.begin(), S->Ranges.end(), Addr,
      [](MemAddr A, const TaskView::RangeRef &R) { return A < R.Base; });
  if (It != S->Ranges.begin()) {
    const TaskView::RangeRef &R = *(It - 1);
    if (Addr - R.Base < R.Size)
      return R.Rec;
  }
  return nullptr;
}

size_t SitePreanalysis::numSites() const {
  std::lock_guard<SpinLock> Guard(TableLock);
  return LiveRanges.size();
}

SiteClass SitePreanalysis::finalClassOf(const SiteRecord &Rec) const {
  uint8_t Exact = Rec.ExactClass.load(std::memory_order_relaxed);
  uint8_t Flags = Rec.Flags.load(std::memory_order_relaxed);
  if (Flags & FlagGrouped)
    return SiteClass::Generic;
  if (ExactAdopted && Exact != uint8_t(SiteClass::Unclassified))
    return static_cast<SiteClass>(Exact);
  // Live mode reports the strongest verdict the observed run supports;
  // counters are ground truth for what actually happened, so these are
  // exact statements about this execution even for sites still inside
  // their warmup window.
  if (Flags & FlagDowngraded)
    return SiteClass::Generic;
  if (Rec.NonSeqAccesses.load(std::memory_order_relaxed) == 0)
    return SiteClass::SequentialOnly;
  if (Rec.NonSeqWrites.load(std::memory_order_relaxed) == 0)
    return SiteClass::ReadOnlyAfterInit;
  uint64_t Sig = Rec.LockSig.load(std::memory_order_relaxed);
  if (!(Flags & FlagLockSigMixed) && Sig != LockSigUnset && Sig != LockSigNone)
    return SiteClass::FixedLockset;
  return SiteClass::Generic;
}

PreanalysisStats SitePreanalysis::stats() const {
  PreanalysisStats S;
  S.Mode = Opts.Mode;
  S.NumSeqSkips = TotalSeqSkips.load(std::memory_order_relaxed);
  S.NumSiteSkips = TotalSiteSkips.load(std::memory_order_relaxed);
  S.NumDowngrades = TotalDowngrades.load(std::memory_order_relaxed);
  S.NumUnsafeDowngrades =
      TotalUnsafeDowngrades.load(std::memory_order_relaxed);
  std::lock_guard<SpinLock> Guard(TableLock);
  S.NumSites = LiveRanges.size();
  for (const TaskView::RangeRef &R : LiveRanges) {
    switch (finalClassOf(*R.Rec)) {
    case SiteClass::SequentialOnly:
      ++S.NumSequentialOnly;
      break;
    case SiteClass::ReadOnlyAfterInit:
      ++S.NumReadOnlyAfterInit;
      break;
    case SiteClass::FixedLockset:
      ++S.NumFixedLockset;
      break;
    case SiteClass::NonGrouped:
    case SiteClass::Generic:
    case SiteClass::Unclassified:
      ++S.NumGeneric;
      break;
    }
    if (!(R.Rec->Flags.load(std::memory_order_relaxed) & FlagGrouped))
      ++S.NumNonGrouped;
  }
  return S;
}
