//===- analysis/SiteClass.h - Site classification lattice ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-analysis verdict lattice. Every instrumented site (a scalar
/// Tracked<T> location or a whole TrackedArray range) is classified before
/// or during the run; the classification compiles to a per-site *action*
/// the checkers consult ahead of the access-path cache:
///
///   SequentialOnly   — every access happened while the program was
///                      globally sequential (root task executing, zero
///                      outstanding spawned tasks). No access of the site
///                      can participate in a violation; the handler is a
///                      no-op (SkipAll).
///   ReadOnlyAfterInit — no write to the site is logically parallel with
///                      any other access (writes happen only in sequential
///                      init/refit phases). Reads are skipped (SkipReads);
///                      a write observed after live-mode classification
///                      *downgrades* the site back to the generic path.
///   FixedLockset     — every observed access held the same non-empty lock
///                      set. Under lock versioning same-lock critical
///                      *sections* still produce disjoint token sets, so
///                      this proves nothing about pattern formation; it is
///                      a classification/reporting verdict only (the
///                      handler stays Generic).
///   NonGrouped       — the site was never registered into a multi-variable
///                      atomic group, so serializability tools never merge
///                      its metadata. Reporting verdict; grouped sites are
///                      additionally pinned to the generic path because
///                      group violations span member locations.
///   Generic          — everything else: the full Figure 6-9 path.
///
/// Soundness: SkipAll/SkipReads handlers are violation-set-preserving by
/// the quiescent-point barrier argument (DESIGN.md §11); live-mode warmup
/// classification is speculative and verified by the downgrade check.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_ANALYSIS_SITECLASS_H
#define AVC_ANALYSIS_SITECLASS_H

#include <cstdint>

namespace avc {

/// How the pre-analysis front end is driven (ToolOptions::Preanalysis,
/// taskcheck --preanalysis=<on|off|profile:N>).
enum class PreanalysisMode : uint8_t {
  Off,     ///< Disabled: every access takes the generic path.
  On,      ///< Sequential-region skip + exact trace classification when
           ///< replaying; live runs add a conservative warmup profile with
           ///< the high default threshold (small runs never speculate).
  Profile, ///< Like On, with an explicit warmup threshold: a site is
           ///< classified after its first N non-sequential accesses.
};

/// The classification lattice (see file comment). Order matters for
/// reporting: a site reports under the strongest class that applies.
enum class SiteClass : uint8_t {
  SequentialOnly,
  ReadOnlyAfterInit,
  FixedLockset,
  NonGrouped,
  Generic,
  Unclassified, ///< Live-mode site still inside its warmup window.
};

/// The compiled per-site handler consulted on the access hot path.
enum class SiteAction : uint8_t {
  Warmup = 0, ///< Live mode: count this access toward classification.
  Generic,    ///< Fall through to the tool's full dispatch.
  SkipReads,  ///< Reads return immediately; a write downgrades to Generic.
  SkipAll,    ///< Every access returns immediately.
};

inline const char *preanalysisModeName(PreanalysisMode Mode) {
  switch (Mode) {
  case PreanalysisMode::Off:
    return "off";
  case PreanalysisMode::On:
    return "on";
  case PreanalysisMode::Profile:
    return "profile";
  }
  return "?";
}

inline const char *siteClassName(SiteClass Class) {
  switch (Class) {
  case SiteClass::SequentialOnly:
    return "sequential-only";
  case SiteClass::ReadOnlyAfterInit:
    return "read-only-after-init";
  case SiteClass::FixedLockset:
    return "fixed-lockset";
  case SiteClass::NonGrouped:
    return "non-grouped";
  case SiteClass::Generic:
    return "generic";
  case SiteClass::Unclassified:
    return "unclassified";
  }
  return "?";
}

/// Mixes a raw lock id into the XOR lockset signature the warmup profile
/// and the trace classifier record per site (splitmix64 finalizer, so
/// structured ids do not cancel under XOR).
inline uint64_t mixLockId(uint64_t Lock) {
  uint64_t X = Lock + 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Default live-mode warmup threshold (accesses per site before the site
/// is classified). Deliberately high: programs that touch a site fewer
/// times than this gain nothing from pruning it, and --preanalysis=on
/// must never speculate on the small traces the test suites replay.
inline constexpr uint32_t DefaultPreanalysisWarmup = 8192;

/// Pre-analysis counters surfaced through every tool's stats.
struct PreanalysisStats {
  PreanalysisMode Mode = PreanalysisMode::Off;
  /// Accesses skipped because the program was globally sequential.
  uint64_t NumSeqSkips = 0;
  /// Accesses skipped by a per-site SkipReads/SkipAll handler.
  uint64_t NumSiteSkips = 0;
  /// Live-mode sites that lost their speculative classification to a
  /// later write, and the subset whose downgrade happened in the same
  /// quiescent phase as an already-skipped read (the only case where a
  /// violation involving a skipped access could be missed).
  uint64_t NumDowngrades = 0;
  uint64_t NumUnsafeDowngrades = 0;
  /// Sites by final class (computed at stats time).
  uint64_t NumSites = 0;
  uint64_t NumSequentialOnly = 0;
  uint64_t NumReadOnlyAfterInit = 0;
  uint64_t NumFixedLockset = 0;
  uint64_t NumNonGrouped = 0;
  uint64_t NumGeneric = 0;

  uint64_t numSkips() const { return NumSeqSkips + NumSiteSkips; }
};

} // namespace avc

#endif // AVC_ANALYSIS_SITECLASS_H
