//===- analysis/TraceClassifier.cpp - Exact replay classification ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/TraceClassifier.h"

#include <cassert>

#include "dpst/Retention.h"

using namespace avc;

TraceClassifier::TraceClassifier(Options Opts)
    : Opts(Opts), Tree(createDpst(Opts.Layout, Opts.Query)), Builder(*Tree) {
  ParallelismOracle::Options OracleOpts = Opts.Oracle;
  OracleOpts.Mode = Opts.Query;
  Oracle = std::make_unique<ParallelismOracle>(*Tree, OracleOpts);
}

TraceClassifier::~TraceClassifier() = default;

TraceClassifier::TaskInfo &TraceClassifier::taskFor(TaskId Task) {
  auto It = Tasks.find(Task);
  assert(It != Tasks.end() && "event for a task that was never spawned");
  return *It->second;
}

void TraceClassifier::onProgramStart(TaskId RootTask) {
  Root = RootTask;
  SeqRegion = true;
  auto Info = std::make_unique<TaskInfo>();
  Builder.initRoot(Info->Frame, RootTask);
  Tasks.emplace(RootTask, std::move(Info));
}

void TraceClassifier::onTaskSpawn(TaskId Parent, const void *GroupTag,
                                  TaskId Child) {
  TaskInfo &ParentInfo = taskFor(Parent);
  auto ChildInfo = std::make_unique<TaskInfo>();
  Builder.spawnTask(ParentInfo.Frame, GroupTag, ChildInfo->Frame, Child);
  Tasks.emplace(Child, std::move(ChildInfo));
  if (Parent == Root) {
    ++OpenByTag[GroupTag];
    ++TotalOpen;
    SeqRegion = false;
  }
}

void TraceClassifier::onTaskEnd(TaskId Task) {
  Builder.endTask(taskFor(Task).Frame);
  // Ended-but-unsynced root children are still logically parallel with
  // what follows, so task end never re-opens the sequential region; only
  // the root's sync/wait events do.
}

void TraceClassifier::onSync(TaskId Task) {
  Builder.sync(taskFor(Task).Frame);
  if (Task != Root)
    return;
  auto It = OpenByTag.find(nullptr);
  if (It != OpenByTag.end()) {
    TotalOpen -= It->second;
    It->second = 0;
  }
  if (TotalOpen == 0)
    SeqRegion = true;
}

void TraceClassifier::onGroupWait(TaskId Task, const void *GroupTag) {
  Builder.waitGroup(taskFor(Task).Frame, GroupTag);
  if (Task != Root)
    return;
  auto It = OpenByTag.find(GroupTag);
  if (It != OpenByTag.end()) {
    TotalOpen -= It->second;
    It->second = 0;
  }
  if (TotalOpen == 0)
    SeqRegion = true;
}

void TraceClassifier::onLockAcquire(TaskId Task, LockId Lock) {
  TaskInfo &Info = taskFor(Task);
  Info.HeldLocks.push_back(Lock);
  Info.HeldSig ^= mixLockId(Lock);
}

void TraceClassifier::onLockRelease(TaskId Task, LockId Lock) {
  TaskInfo &Info = taskFor(Task);
  for (size_t I = Info.HeldLocks.size(); I-- > 0;)
    if (Info.HeldLocks[I] == Lock) {
      Info.HeldLocks.erase(Info.HeldLocks.begin() +
                           static_cast<ptrdiff_t>(I));
      Info.HeldSig ^= mixLockId(Lock);
      return;
    }
}

void TraceClassifier::onRead(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Read);
}

void TraceClassifier::onWrite(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Write);
}

bool TraceClassifier::par(NodeId Entry, NodeId Si) {
  return Entry != InvalidNodeId && Oracle->logicallyParallel(Entry, Si);
}

void TraceClassifier::onAccess(TaskId Task, MemAddr Addr, AccessKind Kind) {
  SiteInfo &Site = Sites[Addr];
  // Sequential-region accesses are in series with every access of the run,
  // so they join no parallel pair; counting them (without materializing a
  // step) keeps the sweep O(n) on init-heavy traces and mirrors the gate's
  // tier-1 skip exactly.
  if (Task == Root && SeqRegion) {
    if (Kind == AccessKind::Read)
      ++Site.SeqReads;
    else
      ++Site.SeqWrites;
    return;
  }
  TaskInfo &Info = taskFor(Task);
  NodeId Si = Builder.currentStep(Info.Frame);

  uint64_t Sig = Info.HeldLocks.empty() ? SitePreanalysis::LockSigNone
                                        : Info.HeldSig;
  if (Site.LockSig == SitePreanalysis::LockSigUnset)
    Site.LockSig = Sig;
  else if (Site.LockSig != Sig)
    Site.LockSigMixed = true;

  if (Kind == AccessKind::Write) {
    ++Site.NonSeqWrites;
    for (NodeId Entry : {Site.R1, Site.R2, Site.W1, Site.W2})
      if (par(Entry, Si))
        Site.WriteConflict = true;
    retainParallelPair(*Oracle, Site.W1, Site.W2, Si);
  } else {
    ++Site.NonSeqReads;
    for (NodeId Writer : {Site.W1, Site.W2})
      if (par(Writer, Si))
        Site.WriteConflict = true;
    retainParallelPair(*Oracle, Site.R1, Site.R2, Si);
  }
}

std::vector<ExactSiteClass> TraceClassifier::classes() const {
  std::vector<ExactSiteClass> Result;
  Result.reserve(Sites.size());
  for (const auto &[Addr, Site] : Sites) {
    ExactSiteClass C;
    C.Base = Addr;
    C.Size = 8;
    C.SeqReads = Site.SeqReads;
    C.SeqWrites = Site.SeqWrites;
    C.NonSeqReads = Site.NonSeqReads;
    C.NonSeqWrites = Site.NonSeqWrites;
    if (Site.NonSeqReads + Site.NonSeqWrites == 0) {
      C.Class = SiteClass::SequentialOnly;
      C.Action = SiteAction::SkipAll;
    } else if (!Site.WriteConflict) {
      // No write runs parallel with any access: no violation can involve
      // this site's reads, in any of the five tools (DESIGN.md §11), so
      // they are skipped. Writes still take the generic path.
      C.Class = SiteClass::ReadOnlyAfterInit;
      C.Action = SiteAction::SkipReads;
    } else if (!Site.LockSigMixed &&
               Site.LockSig != SitePreanalysis::LockSigUnset &&
               Site.LockSig != SitePreanalysis::LockSigNone) {
      C.Class = SiteClass::FixedLockset;
      C.Action = SiteAction::Generic;
    } else {
      C.Class = SiteClass::Generic;
      C.Action = SiteAction::Generic;
    }
    Result.push_back(C);
  }
  return Result;
}
