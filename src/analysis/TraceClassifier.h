//===- analysis/TraceClassifier.h - Exact replay classification -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay-mode front end of the pre-analysis: an O(n) first sweep over
/// a loaded trace that computes *exact* per-site classifications before
/// the checking replay starts (the RegionTrack-style two-pass idea — when
/// the whole execution is known up front, classification need not be
/// conservative).
///
/// The sweep builds its own DPST from the trace's structural events and
/// answers one question per site with the standard two-entry retention:
/// does any write to the site run logically parallel with any other
/// access? Sites where the answer is no are ReadOnlyAfterInit (their reads
/// can be skipped by every tool — DESIGN.md §11); sites whose every access
/// happens while the program is globally sequential are SequentialOnly
/// (every access skippable). The answer is exact, not speculative: the
/// checking replay sees the identical event sequence, so adopted verdicts
/// never downgrade.
///
/// Completeness of the conflict test is the retention theorem: if any
/// parallel (write, access) pair exists, the later access's check against
/// the retained leftmost/rightmost extremes finds one.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_ANALYSIS_TRACECLASSIFIER_H
#define AVC_ANALYSIS_TRACECLASSIFIER_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/SitePreanalysis.h"
#include "dpst/Dpst.h"
#include "dpst/DpstBuilder.h"
#include "dpst/ParallelismOracle.h"
#include "runtime/ExecutionObserver.h"

namespace avc {

/// Classification sweep over one trace. Drive it with replayTrace, then
/// read classes() and adopt them into a SitePreanalysis. Single-threaded
/// (trace replay is sequential by construction).
class TraceClassifier : public ExecutionObserver {
public:
  struct Options {
    DpstLayout Layout = DpstLayout::Array;
    QueryMode Query = QueryMode::Label;
    ParallelismOracle::Options Oracle;
  };

  explicit TraceClassifier(Options Opts);
  TraceClassifier() : TraceClassifier(Options()) {}
  ~TraceClassifier() override;

  // ExecutionObserver interface.
  void onProgramStart(TaskId RootTask) override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onLockAcquire(TaskId Task, LockId Lock) override;
  void onLockRelease(TaskId Task, LockId Lock) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;

  /// The exact classification of every address the trace touched, ready
  /// for SitePreanalysis::adoptExact.
  std::vector<ExactSiteClass> classes() const;

private:
  struct SiteInfo {
    uint64_t SeqReads = 0;
    uint64_t SeqWrites = 0;
    uint64_t NonSeqReads = 0;
    uint64_t NonSeqWrites = 0;
    NodeId R1 = InvalidNodeId;
    NodeId R2 = InvalidNodeId;
    NodeId W1 = InvalidNodeId;
    NodeId W2 = InvalidNodeId;
    /// True once some write is logically parallel with some other access.
    bool WriteConflict = false;
    uint64_t LockSig = SitePreanalysis::LockSigUnset;
    bool LockSigMixed = false;
  };

  struct TaskInfo {
    TaskFrame Frame;
    std::vector<LockId> HeldLocks;
    uint64_t HeldSig = 0;
  };

  TaskInfo &taskFor(TaskId Task);
  void onAccess(TaskId Task, MemAddr Addr, AccessKind Kind);
  bool par(NodeId Entry, NodeId Si);

  Options Opts;
  std::unique_ptr<Dpst> Tree;
  std::unique_ptr<ParallelismOracle> Oracle;
  DpstBuilder Builder;

  std::unordered_map<TaskId, std::unique_ptr<TaskInfo>> Tasks;
  std::unordered_map<MemAddr, SiteInfo> Sites;

  // Sequential-region simulation, mirroring SitePreanalysis (the adopted
  // verdicts must agree with what the gate's tier-1 skip will do during
  // the checking replay).
  TaskId Root = ~0u;
  bool SeqRegion = false;
  std::unordered_map<const void *, uint64_t> OpenByTag;
  uint64_t TotalOpen = 0;
};

} // namespace avc

#endif // AVC_ANALYSIS_TRACECLASSIFIER_H
