//===- analysis/SitePreanalysis.h - Per-site fast-path handlers -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-analysis engine each checker tool embeds: a table of registered
/// sites (SiteRegistry pulls plus live onSiteRegister events), a
/// per-site compiled handler (SiteAction), and the sequential-region
/// tracker that powers the cheapest skip of all.
///
/// The hot entry point is gate(): called at the top of every tool's
/// onAccess, *before* the access-path cache. It answers in three tiers:
///
///   1. *Sequential-region skip.* When the root task executes with zero
///      outstanding spawned tasks (a global quiescent region), its
///      accesses are in series with every other access of the run — the
///      runtime's Cilk semantics guarantee a task implicitly syncs its
///      children when it returns, so no task survives a root-level join.
///      Such accesses can be dropped without changing any tool's violation
///      set (DESIGN.md §11 gives the replacement-identity proof for both
///      metadata retention modes). Cost: one task-id compare and one
///      relaxed bool load.
///
///   2. *Per-site handler.* The access address resolves to its site
///      (4-entry MRU of range refs, then a lock-free snapshot binary
///      search), and the site's compiled action dispatches: SkipAll and
///      SkipReads return immediately, Generic falls through, Warmup counts
///      the access toward live classification.
///
///   3. *Fall through* to the tool's normal dispatch (access cache,
///      shadow walk, Figure 6-9 metadata).
///
/// Quiescent phases: a counter increments every time the program re-enters
/// a sequential region. Sites speculatively classified ReadOnlyAfterInit
/// record the phase of every skipped read; a downgrade (write to such a
/// site) is provably lossless when it happens in a *later* phase than all
/// skipped reads — every step before a quiescent point is in series with
/// every step after it, so the writer cannot be logically parallel with
/// any skipped access. Same-phase downgrades are counted separately
/// (NumUnsafeDowngrades): they are the precise — and deliberately
/// narrow — unsoundness boundary of live-mode speculation.
///
/// Thread safety: site records are shared, mutated with relaxed atomics
/// (counters) and CAS (action transitions). The sequential-region state is
/// only written by handlers of root-task events and only read for
/// root-task accesses; task migration between workers is ordered by the
/// runtime's scheduling synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_ANALYSIS_SITEPREANALYSIS_H
#define AVC_ANALYSIS_SITEPREANALYSIS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/SiteClass.h"
#include "checker/AccessKind.h"
#include "runtime/ExecutionObserver.h"
#include "support/Compiler.h"
#include "support/SpinLock.h"

namespace avc {

/// One site classification produced by the exact (replay-mode) front end.
struct ExactSiteClass {
  MemAddr Base = 0;
  uint64_t Size = 0;
  SiteClass Class = SiteClass::Generic;
  SiteAction Action = SiteAction::Generic;
  uint64_t SeqReads = 0;
  uint64_t SeqWrites = 0;
  uint64_t NonSeqReads = 0;
  uint64_t NonSeqWrites = 0;
};

/// Per-tool pre-analysis engine (see file comment).
class SitePreanalysis {
public:
  struct Options {
    PreanalysisMode Mode = PreanalysisMode::Off;
    /// Accesses per site before live classification (Profile mode sets it
    /// from --preanalysis=profile:N; On uses the high default).
    uint32_t WarmupThreshold = DefaultPreanalysisWarmup;
  };

  static constexpr uint32_t NoPhase = ~0u;
  static constexpr uint64_t LockSigUnset = ~0ull;
  /// Sentinel for "accessed with no locks held at least once" (a real XOR
  /// signature of held locks is never this value by construction: empty
  /// sets map here instead of 0).
  static constexpr uint64_t LockSigNone = ~0ull - 1;

  /// Flag bits in SiteRecord::Flags.
  static constexpr uint8_t FlagGrouped = 1;
  static constexpr uint8_t FlagLockSigMixed = 2;
  static constexpr uint8_t FlagDowngraded = 4;
  static constexpr uint8_t FlagSpeculativeRO = 8;

  /// Shared per-site state. Records live in a pooled arena and are never
  /// freed, so cached pointers stay valid for the tool's lifetime.
  struct SiteRecord {
    MemAddr Base = 0;
    uint64_t Size = 0;
    uint32_t Stride = 0;
    std::atomic<uint8_t> Action{uint8_t(SiteAction::Generic)};
    std::atomic<uint8_t> Flags{0};
    std::atomic<uint8_t> ExactClass{uint8_t(SiteClass::Unclassified)};
    /// Warmup window counters (live mode; bounded by the threshold, so
    /// the shared-line contention is transient).
    std::atomic<uint32_t> NonSeqAccesses{0};
    std::atomic<uint32_t> NonSeqWrites{0};
    /// XOR lockset signature observed during warmup; LockSigUnset until
    /// the first counted access, LockSigMixed flag once two differ.
    std::atomic<uint64_t> LockSig{LockSigUnset};
    /// Sequential-region accesses attributed to this site (root-written).
    std::atomic<uint64_t> SeqReads{0};
    std::atomic<uint64_t> SeqWrites{0};
    /// Quiescent phase of the most recent skipped read (downgrade proof).
    std::atomic<uint32_t> LastSkipPhase{NoPhase};
  };

  /// Task-private gate state, embedded in each tool's TaskState. Single
  /// owner: only the worker currently executing the task touches it.
  struct TaskView {
    struct RangeRef {
      MemAddr Base = 0;
      uint64_t Size = 0;
      SiteRecord *Rec = nullptr;
    };
    static constexpr unsigned NumMru = 4;
    RangeRef Mru[NumMru];
    unsigned MruNext = 0;
    /// Skip counters folded into the engine totals at task end.
    uint64_t SeqSkips = 0;
    uint64_t SiteSkips = 0;
    /// Raw lock ids currently held (for the warmup lockset signature;
    /// tools that do not observe locks leave this empty).
    std::vector<LockId> HeldLocks;
    uint64_t HeldSig = 0; ///< XOR of mixed held lock ids; 0 = none.

    void reset() {
      for (RangeRef &R : Mru)
        R = RangeRef();
      MruNext = 0;
      SeqSkips = SiteSkips = 0;
      HeldLocks.clear();
      HeldSig = 0;
    }
  };

  explicit SitePreanalysis(Options Opts) : Opts(Opts) {
    Snap.store(&EmptySnapshot, std::memory_order_relaxed);
  }
  SitePreanalysis() : SitePreanalysis(Options()) {}
  ~SitePreanalysis();

  SitePreanalysis(const SitePreanalysis &) = delete;
  SitePreanalysis &operator=(const SitePreanalysis &) = delete;

  bool enabled() const { return Opts.Mode != PreanalysisMode::Off; }
  const Options &options() const { return Opts; }

  // --- Event hooks (called from the owning tool's observer callbacks) ---

  /// Seeds the table from the process SiteRegistry and arms the
  /// sequential-region tracker.
  void noteProgramStart(TaskId RootTask);

  /// Root spawning ends the sequential region until the matching drain.
  void noteSpawn(TaskId Parent, const void *GroupTag) {
    if (AVC_LIKELY(Parent != Root))
      return;
    ++OpenByTag[GroupTag];
    ++TotalOpen;
    if (SeqRegion.load(std::memory_order_relaxed))
      SeqRegion.store(false, std::memory_order_relaxed);
  }

  /// Root sync closes the implicit scope; re-enters the sequential region
  /// (and advances the quiescent phase) when nothing remains outstanding.
  void noteSync(TaskId Task) {
    if (AVC_UNLIKELY(Task == Root))
      drainRootScope(nullptr);
  }

  void noteGroupWait(TaskId Task, const void *GroupTag) {
    if (AVC_UNLIKELY(Task == Root))
      drainRootScope(GroupTag);
  }

  /// Mid-run site registration (a Tracked/TrackedArray constructed inside
  /// a task; also used to seed from the registry snapshot).
  void registerRange(MemAddr Base, uint64_t Size, uint32_t Stride);

  /// Pins every site containing one of \p Members to the generic path:
  /// group violations span member locations, so per-site reasoning does
  /// not apply. Callable before program start (records the addresses and
  /// applies them to sites created later).
  void markGrouped(const MemAddr *Members, size_t Count);

  /// Installs exact classifications computed by TraceClassifier (replay
  /// mode). Addresses outside the adopted set fall back to Generic —
  /// after an exact adoption the engine never speculates.
  void adoptExact(const std::vector<ExactSiteClass> &Sites);

  // --- Lock tracking (tools that observe lock events) ---

  void noteLockAcquire(TaskView &View, LockId Lock) {
    View.HeldLocks.push_back(Lock);
    View.HeldSig ^= mixLock(Lock);
  }

  void noteLockRelease(TaskView &View, LockId Lock) {
    for (size_t I = View.HeldLocks.size(); I-- > 0;)
      if (View.HeldLocks[I] == Lock) {
        View.HeldLocks.erase(View.HeldLocks.begin() +
                             static_cast<ptrdiff_t>(I));
        View.HeldSig ^= mixLock(Lock);
        return;
      }
  }

  /// Clears per-task state and folds its counters (task end; also used
  /// when a task ends holding locks).
  void foldView(TaskView &View) {
    if (View.SeqSkips)
      TotalSeqSkips.fetch_add(View.SeqSkips, std::memory_order_relaxed);
    if (View.SiteSkips)
      TotalSiteSkips.fetch_add(View.SiteSkips, std::memory_order_relaxed);
    View.reset();
  }

  // --- The hot gate ---

  /// Returns true when the access is fully handled (skipped); false falls
  /// through to the tool's normal dispatch.
  AVC_ALWAYS_INLINE bool gate(TaskView &View, TaskId Task, MemAddr Addr,
                              AccessKind Kind) {
    if (Task == Root && SeqRegion.load(std::memory_order_relaxed)) {
      ++View.SeqSkips;
      if (SiteRecord *Rec = resolve(View, Addr)) {
        std::atomic<uint64_t> &Counter =
            Kind == AccessKind::Read ? Rec->SeqReads : Rec->SeqWrites;
        Counter.store(Counter.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed); // root is the only writer
      }
      return true;
    }
    SiteRecord *Rec = resolve(View, Addr);
    if (AVC_UNLIKELY(!Rec))
      return false;
    uint8_t Act = Rec->Action.load(std::memory_order_relaxed);
    if (AVC_LIKELY(Act == uint8_t(SiteAction::Generic)))
      return false;
    return gateSlow(View, *Rec, static_cast<SiteAction>(Act), Kind);
  }

  /// The current quiescent phase (tests, diagnostics).
  uint32_t currentPhase() const {
    return Phase.load(std::memory_order_relaxed);
  }

  /// Bumped whenever a site loses its speculative classification. Tools
  /// fold this into the epoch they stamp/compare on access-cache entries,
  /// so a downgrade invalidates every cached verdict at once (the cached
  /// "safe" verdicts may predate metadata the skipped reads never wrote).
  uint64_t downgradeGen() const {
    return DowngradeGen.load(std::memory_order_relaxed);
  }

  /// True while the program is globally sequential (tests).
  bool inSequentialRegion() const {
    return SeqRegion.load(std::memory_order_relaxed);
  }

  /// Site lookup for tests and reporting; nullptr if \p Addr is in no
  /// registered range.
  SiteRecord *findSite(MemAddr Addr);

  size_t numSites() const;

  /// Aggregated counters plus final per-class site counts. Sites are
  /// classified by the strongest applicable verdict: SequentialOnly >
  /// ReadOnlyAfterInit > FixedLockset > Generic, with NonGrouped counted
  /// orthogonally.
  PreanalysisStats stats() const;

  /// Final class of one site under the same rules as stats().
  SiteClass finalClassOf(const SiteRecord &Rec) const;

private:
  struct Snapshot {
    std::vector<TaskView::RangeRef> Ranges; ///< Sorted by Base.
  };

  static uint64_t mixLock(LockId Lock) { return mixLockId(Lock); }

  /// The signature warmup records for the currently held lock set.
  static uint64_t heldSignature(const TaskView &View) {
    return View.HeldLocks.empty() ? LockSigNone : View.HeldSig;
  }

  AVC_ALWAYS_INLINE SiteRecord *resolve(TaskView &View, MemAddr Addr) {
    for (const TaskView::RangeRef &R : View.Mru)
      if (Addr - R.Base < R.Size)
        return R.Rec;
    return resolveSlow(View, Addr);
  }

  SiteRecord *resolveSlow(TaskView &View, MemAddr Addr);
  bool gateSlow(TaskView &View, SiteRecord &Rec, SiteAction Act,
                AccessKind Kind);
  void warmupCount(TaskView &View, SiteRecord &Rec, AccessKind Kind);
  void classify(SiteRecord &Rec);
  void downgrade(SiteRecord &Rec);
  void drainRootScope(const void *Tag);

  /// Creates (or finds) the record for [Base, Base+Size) and republishes
  /// the lookup snapshot. Newer ranges shadow overlapping older ones
  /// (address reuse after a site was destroyed).
  SiteRecord *addRangeLocked(MemAddr Base, uint64_t Size, uint32_t Stride);
  void publishLocked();
  bool groupedOverlapsLocked(MemAddr Base, uint64_t Size) const;

  Options Opts;

  // Sequential-region tracker. Written only by root-event handlers, read
  // only for root accesses; atomics make the cross-worker migration of
  // the root task explicit.
  TaskId Root = ~0u;
  std::atomic<bool> SeqRegion{false};
  std::atomic<uint32_t> Phase{0};
  std::unordered_map<const void *, uint64_t> OpenByTag;
  uint64_t TotalOpen = 0;

  // Site table: append-only record pool + copy-on-write sorted snapshot.
  mutable SpinLock TableLock;
  std::vector<std::unique_ptr<SiteRecord>> Records;
  std::vector<TaskView::RangeRef> LiveRanges;
  std::vector<std::unique_ptr<Snapshot>> RetiredSnapshots;
  std::atomic<Snapshot *> Snap{nullptr};
  Snapshot EmptySnapshot;
  std::vector<MemAddr> GroupedAddrs;
  bool ExactAdopted = false;
  uint64_t RegistrySeen = 0; ///< Registry ids already pulled.

  // Engine totals (per-task views fold in at task end).
  std::atomic<uint64_t> TotalSeqSkips{0};
  std::atomic<uint64_t> TotalSiteSkips{0};
  std::atomic<uint64_t> TotalDowngrades{0};
  std::atomic<uint64_t> TotalUnsafeDowngrades{0};
  std::atomic<uint64_t> DowngradeGen{0};
};

} // namespace avc

#endif // AVC_ANALYSIS_SITEPREANALYSIS_H
