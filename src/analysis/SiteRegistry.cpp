//===- analysis/SiteRegistry.cpp - Process-wide site registration ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/SiteRegistry.h"

#include <mutex>

using namespace avc;

SiteRegistry &SiteRegistry::instance() {
  static SiteRegistry Registry;
  return Registry;
}

int &SiteRegistry::depth() {
  static thread_local int Depth = 0;
  return Depth;
}

uint64_t SiteRegistry::registerRange(MemAddr Base, uint64_t Size,
                                     uint32_t Stride) {
  std::lock_guard<SpinLock> Guard(Lock);
  // Compact once tombstones dominate, so churn (benchmark reps creating
  // and destroying workloads) keeps the registry small.
  if (NumDead > 64 && NumDead * 2 > Entries.size()) {
    size_t Out = 0;
    for (Entry &E : Entries)
      if (E.Live)
        Entries[Out++] = E;
    Entries.resize(Out);
    NumDead = 0;
  }
  Entry E;
  E.Base = Base;
  E.Size = Size;
  E.Stride = Stride;
  E.Id = NextId++;
  E.Live = true;
  Entries.push_back(E);
  return E.Id;
}

void SiteRegistry::unregisterRange(MemAddr Base) {
  std::lock_guard<SpinLock> Guard(Lock);
  // Newest live entry first: address reuse means the most recent
  // registration at this base is the one being destroyed.
  for (size_t I = Entries.size(); I-- > 0;) {
    Entry &E = Entries[I];
    if (E.Live && E.Base == Base) {
      E.Live = false;
      ++NumDead;
      return;
    }
  }
}

std::vector<SiteRegistry::Entry> SiteRegistry::snapshot() const {
  std::lock_guard<SpinLock> Guard(Lock);
  std::vector<Entry> Live;
  Live.reserve(Entries.size() - NumDead);
  for (const Entry &E : Entries)
    if (E.Live)
      Live.push_back(E);
  return Live;
}

size_t SiteRegistry::numLive() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Entries.size() - NumDead;
}
