# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/taskcheck" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_workload "/root/repo/build/tools/taskcheck" "--tool=atomicity" "--workload=sort" "--scale=0.05")
set_tests_properties(cli_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate "/root/repo/build/tools/taskcheck" "--generate" "--seed=3" "--tasks=6")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
