file(REMOVE_RECURSE
  "CMakeFiles/taskcheck.dir/taskcheck.cpp.o"
  "CMakeFiles/taskcheck.dir/taskcheck.cpp.o.d"
  "taskcheck"
  "taskcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
