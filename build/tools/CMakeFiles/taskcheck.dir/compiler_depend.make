# Empty compiler generated dependencies file for taskcheck.
# This may be replaced when dependencies are built.
