file(REMOVE_RECURSE
  "libavc_checker.a"
)
