
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/AtomicityChecker.cpp" "src/checker/CMakeFiles/avc_checker.dir/AtomicityChecker.cpp.o" "gcc" "src/checker/CMakeFiles/avc_checker.dir/AtomicityChecker.cpp.o.d"
  "/root/repo/src/checker/BasicChecker.cpp" "src/checker/CMakeFiles/avc_checker.dir/BasicChecker.cpp.o" "gcc" "src/checker/CMakeFiles/avc_checker.dir/BasicChecker.cpp.o.d"
  "/root/repo/src/checker/DeterminismChecker.cpp" "src/checker/CMakeFiles/avc_checker.dir/DeterminismChecker.cpp.o" "gcc" "src/checker/CMakeFiles/avc_checker.dir/DeterminismChecker.cpp.o.d"
  "/root/repo/src/checker/RaceDetector.cpp" "src/checker/CMakeFiles/avc_checker.dir/RaceDetector.cpp.o" "gcc" "src/checker/CMakeFiles/avc_checker.dir/RaceDetector.cpp.o.d"
  "/root/repo/src/checker/Velodrome.cpp" "src/checker/CMakeFiles/avc_checker.dir/Velodrome.cpp.o" "gcc" "src/checker/CMakeFiles/avc_checker.dir/Velodrome.cpp.o.d"
  "/root/repo/src/checker/ViolationReport.cpp" "src/checker/CMakeFiles/avc_checker.dir/ViolationReport.cpp.o" "gcc" "src/checker/CMakeFiles/avc_checker.dir/ViolationReport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpst/CMakeFiles/avc_dpst.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/avc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
