file(REMOVE_RECURSE
  "CMakeFiles/avc_checker.dir/AtomicityChecker.cpp.o"
  "CMakeFiles/avc_checker.dir/AtomicityChecker.cpp.o.d"
  "CMakeFiles/avc_checker.dir/BasicChecker.cpp.o"
  "CMakeFiles/avc_checker.dir/BasicChecker.cpp.o.d"
  "CMakeFiles/avc_checker.dir/DeterminismChecker.cpp.o"
  "CMakeFiles/avc_checker.dir/DeterminismChecker.cpp.o.d"
  "CMakeFiles/avc_checker.dir/RaceDetector.cpp.o"
  "CMakeFiles/avc_checker.dir/RaceDetector.cpp.o.d"
  "CMakeFiles/avc_checker.dir/Velodrome.cpp.o"
  "CMakeFiles/avc_checker.dir/Velodrome.cpp.o.d"
  "CMakeFiles/avc_checker.dir/ViolationReport.cpp.o"
  "CMakeFiles/avc_checker.dir/ViolationReport.cpp.o.d"
  "libavc_checker.a"
  "libavc_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avc_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
