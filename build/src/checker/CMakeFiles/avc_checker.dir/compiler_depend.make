# Empty compiler generated dependencies file for avc_checker.
# This may be replaced when dependencies are built.
