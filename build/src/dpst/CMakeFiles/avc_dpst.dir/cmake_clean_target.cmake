file(REMOVE_RECURSE
  "libavc_dpst.a"
)
