
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpst/ArrayDpst.cpp" "src/dpst/CMakeFiles/avc_dpst.dir/ArrayDpst.cpp.o" "gcc" "src/dpst/CMakeFiles/avc_dpst.dir/ArrayDpst.cpp.o.d"
  "/root/repo/src/dpst/Dpst.cpp" "src/dpst/CMakeFiles/avc_dpst.dir/Dpst.cpp.o" "gcc" "src/dpst/CMakeFiles/avc_dpst.dir/Dpst.cpp.o.d"
  "/root/repo/src/dpst/DpstBuilder.cpp" "src/dpst/CMakeFiles/avc_dpst.dir/DpstBuilder.cpp.o" "gcc" "src/dpst/CMakeFiles/avc_dpst.dir/DpstBuilder.cpp.o.d"
  "/root/repo/src/dpst/DpstDot.cpp" "src/dpst/CMakeFiles/avc_dpst.dir/DpstDot.cpp.o" "gcc" "src/dpst/CMakeFiles/avc_dpst.dir/DpstDot.cpp.o.d"
  "/root/repo/src/dpst/LcaCache.cpp" "src/dpst/CMakeFiles/avc_dpst.dir/LcaCache.cpp.o" "gcc" "src/dpst/CMakeFiles/avc_dpst.dir/LcaCache.cpp.o.d"
  "/root/repo/src/dpst/LinkedDpst.cpp" "src/dpst/CMakeFiles/avc_dpst.dir/LinkedDpst.cpp.o" "gcc" "src/dpst/CMakeFiles/avc_dpst.dir/LinkedDpst.cpp.o.d"
  "/root/repo/src/dpst/ParallelismOracle.cpp" "src/dpst/CMakeFiles/avc_dpst.dir/ParallelismOracle.cpp.o" "gcc" "src/dpst/CMakeFiles/avc_dpst.dir/ParallelismOracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
