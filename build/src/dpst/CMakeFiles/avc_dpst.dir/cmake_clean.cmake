file(REMOVE_RECURSE
  "CMakeFiles/avc_dpst.dir/ArrayDpst.cpp.o"
  "CMakeFiles/avc_dpst.dir/ArrayDpst.cpp.o.d"
  "CMakeFiles/avc_dpst.dir/Dpst.cpp.o"
  "CMakeFiles/avc_dpst.dir/Dpst.cpp.o.d"
  "CMakeFiles/avc_dpst.dir/DpstBuilder.cpp.o"
  "CMakeFiles/avc_dpst.dir/DpstBuilder.cpp.o.d"
  "CMakeFiles/avc_dpst.dir/DpstDot.cpp.o"
  "CMakeFiles/avc_dpst.dir/DpstDot.cpp.o.d"
  "CMakeFiles/avc_dpst.dir/LcaCache.cpp.o"
  "CMakeFiles/avc_dpst.dir/LcaCache.cpp.o.d"
  "CMakeFiles/avc_dpst.dir/LinkedDpst.cpp.o"
  "CMakeFiles/avc_dpst.dir/LinkedDpst.cpp.o.d"
  "CMakeFiles/avc_dpst.dir/ParallelismOracle.cpp.o"
  "CMakeFiles/avc_dpst.dir/ParallelismOracle.cpp.o.d"
  "libavc_dpst.a"
  "libavc_dpst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avc_dpst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
