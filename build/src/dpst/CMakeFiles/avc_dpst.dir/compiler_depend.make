# Empty compiler generated dependencies file for avc_dpst.
# This may be replaced when dependencies are built.
