file(REMOVE_RECURSE
  "libavc_runtime.a"
)
