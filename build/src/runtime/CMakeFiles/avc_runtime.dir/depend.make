# Empty dependencies file for avc_runtime.
# This may be replaced when dependencies are built.
