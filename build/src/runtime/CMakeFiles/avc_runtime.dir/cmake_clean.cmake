file(REMOVE_RECURSE
  "CMakeFiles/avc_runtime.dir/ExecutionObserver.cpp.o"
  "CMakeFiles/avc_runtime.dir/ExecutionObserver.cpp.o.d"
  "CMakeFiles/avc_runtime.dir/TaskRuntime.cpp.o"
  "CMakeFiles/avc_runtime.dir/TaskRuntime.cpp.o.d"
  "libavc_runtime.a"
  "libavc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
