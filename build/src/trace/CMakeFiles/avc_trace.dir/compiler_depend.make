# Empty compiler generated dependencies file for avc_trace.
# This may be replaced when dependencies are built.
