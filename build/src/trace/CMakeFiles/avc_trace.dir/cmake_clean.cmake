file(REMOVE_RECURSE
  "CMakeFiles/avc_trace.dir/TraceGenerator.cpp.o"
  "CMakeFiles/avc_trace.dir/TraceGenerator.cpp.o.d"
  "CMakeFiles/avc_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/avc_trace.dir/TraceIO.cpp.o.d"
  "CMakeFiles/avc_trace.dir/TraceRecorder.cpp.o"
  "CMakeFiles/avc_trace.dir/TraceRecorder.cpp.o.d"
  "CMakeFiles/avc_trace.dir/TraceReplayer.cpp.o"
  "CMakeFiles/avc_trace.dir/TraceReplayer.cpp.o.d"
  "libavc_trace.a"
  "libavc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
