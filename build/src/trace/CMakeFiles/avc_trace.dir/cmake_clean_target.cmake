file(REMOVE_RECURSE
  "libavc_trace.a"
)
