file(REMOVE_RECURSE
  "libavc_workloads.a"
)
