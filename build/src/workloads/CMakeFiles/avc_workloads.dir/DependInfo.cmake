
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Blackscholes.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Blackscholes.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Blackscholes.cpp.o.d"
  "/root/repo/src/workloads/Bodytrack.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Bodytrack.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Bodytrack.cpp.o.d"
  "/root/repo/src/workloads/Convexhull.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Convexhull.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Convexhull.cpp.o.d"
  "/root/repo/src/workloads/Delrefine.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Delrefine.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Delrefine.cpp.o.d"
  "/root/repo/src/workloads/Deltriang.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Deltriang.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Deltriang.cpp.o.d"
  "/root/repo/src/workloads/Fluidanimate.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Fluidanimate.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Fluidanimate.cpp.o.d"
  "/root/repo/src/workloads/Karatsuba.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Karatsuba.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Karatsuba.cpp.o.d"
  "/root/repo/src/workloads/Kmeans.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Kmeans.cpp.o.d"
  "/root/repo/src/workloads/Nearestneigh.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Nearestneigh.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Nearestneigh.cpp.o.d"
  "/root/repo/src/workloads/Raycast.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Raycast.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Raycast.cpp.o.d"
  "/root/repo/src/workloads/Sort.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Sort.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Sort.cpp.o.d"
  "/root/repo/src/workloads/Streamcluster.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Streamcluster.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Streamcluster.cpp.o.d"
  "/root/repo/src/workloads/Swaptions.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Swaptions.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Swaptions.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/workloads/CMakeFiles/avc_workloads.dir/Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/avc_workloads.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/avc_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/avc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/avc_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/dpst/CMakeFiles/avc_dpst.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
