file(REMOVE_RECURSE
  "CMakeFiles/avc_workloads.dir/Blackscholes.cpp.o"
  "CMakeFiles/avc_workloads.dir/Blackscholes.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Bodytrack.cpp.o"
  "CMakeFiles/avc_workloads.dir/Bodytrack.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Convexhull.cpp.o"
  "CMakeFiles/avc_workloads.dir/Convexhull.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Delrefine.cpp.o"
  "CMakeFiles/avc_workloads.dir/Delrefine.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Deltriang.cpp.o"
  "CMakeFiles/avc_workloads.dir/Deltriang.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Fluidanimate.cpp.o"
  "CMakeFiles/avc_workloads.dir/Fluidanimate.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Karatsuba.cpp.o"
  "CMakeFiles/avc_workloads.dir/Karatsuba.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Kmeans.cpp.o"
  "CMakeFiles/avc_workloads.dir/Kmeans.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Nearestneigh.cpp.o"
  "CMakeFiles/avc_workloads.dir/Nearestneigh.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Raycast.cpp.o"
  "CMakeFiles/avc_workloads.dir/Raycast.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Sort.cpp.o"
  "CMakeFiles/avc_workloads.dir/Sort.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Streamcluster.cpp.o"
  "CMakeFiles/avc_workloads.dir/Streamcluster.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Swaptions.cpp.o"
  "CMakeFiles/avc_workloads.dir/Swaptions.cpp.o.d"
  "CMakeFiles/avc_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/avc_workloads.dir/Workloads.cpp.o.d"
  "libavc_workloads.a"
  "libavc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
