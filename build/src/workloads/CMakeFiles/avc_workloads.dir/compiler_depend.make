# Empty compiler generated dependencies file for avc_workloads.
# This may be replaced when dependencies are built.
