file(REMOVE_RECURSE
  "libavc_instrument.a"
)
