file(REMOVE_RECURSE
  "CMakeFiles/avc_instrument.dir/ToolContext.cpp.o"
  "CMakeFiles/avc_instrument.dir/ToolContext.cpp.o.d"
  "libavc_instrument.a"
  "libavc_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avc_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
