# Empty compiler generated dependencies file for avc_instrument.
# This may be replaced when dependencies are built.
