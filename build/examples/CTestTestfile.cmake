# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_audit "/root/repo/build/examples/bank_audit")
set_tests_properties(example_bank_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_explorer "/root/repo/build/examples/trace_explorer" "--seed=3")
set_tests_properties(example_trace_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parallel_histogram "/root/repo/build/examples/parallel_histogram")
set_tests_properties(example_parallel_histogram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
