file(REMOVE_RECURSE
  "CMakeFiles/parallel_histogram.dir/parallel_histogram.cpp.o"
  "CMakeFiles/parallel_histogram.dir/parallel_histogram.cpp.o.d"
  "parallel_histogram"
  "parallel_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
