# Empty compiler generated dependencies file for basic_checker_test.
# This may be replaced when dependencies are built.
