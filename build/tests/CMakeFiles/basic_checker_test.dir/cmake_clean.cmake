file(REMOVE_RECURSE
  "CMakeFiles/basic_checker_test.dir/BasicCheckerTest.cpp.o"
  "CMakeFiles/basic_checker_test.dir/BasicCheckerTest.cpp.o.d"
  "basic_checker_test"
  "basic_checker_test.pdb"
  "basic_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
