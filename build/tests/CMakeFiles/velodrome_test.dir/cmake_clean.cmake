file(REMOVE_RECURSE
  "CMakeFiles/velodrome_test.dir/VelodromeTest.cpp.o"
  "CMakeFiles/velodrome_test.dir/VelodromeTest.cpp.o.d"
  "velodrome_test"
  "velodrome_test.pdb"
  "velodrome_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velodrome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
