# Empty compiler generated dependencies file for velodrome_test.
# This may be replaced when dependencies are built.
