file(REMOVE_RECURSE
  "CMakeFiles/finish_scope_test.dir/FinishScopeTest.cpp.o"
  "CMakeFiles/finish_scope_test.dir/FinishScopeTest.cpp.o.d"
  "finish_scope_test"
  "finish_scope_test.pdb"
  "finish_scope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finish_scope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
