# Empty dependencies file for finish_scope_test.
# This may be replaced when dependencies are built.
