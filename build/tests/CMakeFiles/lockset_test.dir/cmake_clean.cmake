file(REMOVE_RECURSE
  "CMakeFiles/lockset_test.dir/LockSetTest.cpp.o"
  "CMakeFiles/lockset_test.dir/LockSetTest.cpp.o.d"
  "lockset_test"
  "lockset_test.pdb"
  "lockset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
