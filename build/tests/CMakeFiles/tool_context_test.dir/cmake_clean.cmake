file(REMOVE_RECURSE
  "CMakeFiles/tool_context_test.dir/ToolContextTest.cpp.o"
  "CMakeFiles/tool_context_test.dir/ToolContextTest.cpp.o.d"
  "tool_context_test"
  "tool_context_test.pdb"
  "tool_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
