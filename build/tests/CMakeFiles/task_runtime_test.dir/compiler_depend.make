# Empty compiler generated dependencies file for task_runtime_test.
# This may be replaced when dependencies are built.
