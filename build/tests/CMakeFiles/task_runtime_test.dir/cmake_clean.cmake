file(REMOVE_RECURSE
  "CMakeFiles/task_runtime_test.dir/TaskRuntimeTest.cpp.o"
  "CMakeFiles/task_runtime_test.dir/TaskRuntimeTest.cpp.o.d"
  "task_runtime_test"
  "task_runtime_test.pdb"
  "task_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
