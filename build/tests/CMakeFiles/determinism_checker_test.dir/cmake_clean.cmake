file(REMOVE_RECURSE
  "CMakeFiles/determinism_checker_test.dir/DeterminismCheckerTest.cpp.o"
  "CMakeFiles/determinism_checker_test.dir/DeterminismCheckerTest.cpp.o.d"
  "determinism_checker_test"
  "determinism_checker_test.pdb"
  "determinism_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
