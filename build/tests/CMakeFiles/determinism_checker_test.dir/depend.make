# Empty dependencies file for determinism_checker_test.
# This may be replaced when dependencies are built.
