file(REMOVE_RECURSE
  "CMakeFiles/tree_order_test.dir/TreeOrderTest.cpp.o"
  "CMakeFiles/tree_order_test.dir/TreeOrderTest.cpp.o.d"
  "tree_order_test"
  "tree_order_test.pdb"
  "tree_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
