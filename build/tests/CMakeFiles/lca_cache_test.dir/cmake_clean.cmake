file(REMOVE_RECURSE
  "CMakeFiles/lca_cache_test.dir/LcaCacheTest.cpp.o"
  "CMakeFiles/lca_cache_test.dir/LcaCacheTest.cpp.o.d"
  "lca_cache_test"
  "lca_cache_test.pdb"
  "lca_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lca_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
