# Empty compiler generated dependencies file for lca_cache_test.
# This may be replaced when dependencies are built.
