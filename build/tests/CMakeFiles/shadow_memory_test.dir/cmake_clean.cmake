file(REMOVE_RECURSE
  "CMakeFiles/shadow_memory_test.dir/ShadowMemoryTest.cpp.o"
  "CMakeFiles/shadow_memory_test.dir/ShadowMemoryTest.cpp.o.d"
  "shadow_memory_test"
  "shadow_memory_test.pdb"
  "shadow_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
