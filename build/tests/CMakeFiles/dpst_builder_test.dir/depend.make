# Empty dependencies file for dpst_builder_test.
# This may be replaced when dependencies are built.
