file(REMOVE_RECURSE
  "CMakeFiles/dpst_builder_test.dir/DpstBuilderTest.cpp.o"
  "CMakeFiles/dpst_builder_test.dir/DpstBuilderTest.cpp.o.d"
  "dpst_builder_test"
  "dpst_builder_test.pdb"
  "dpst_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpst_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
