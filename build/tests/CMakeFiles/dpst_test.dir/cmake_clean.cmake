file(REMOVE_RECURSE
  "CMakeFiles/dpst_test.dir/DpstTest.cpp.o"
  "CMakeFiles/dpst_test.dir/DpstTest.cpp.o.d"
  "dpst_test"
  "dpst_test.pdb"
  "dpst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
