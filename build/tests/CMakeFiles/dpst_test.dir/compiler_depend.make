# Empty compiler generated dependencies file for dpst_test.
# This may be replaced when dependencies are built.
