file(REMOVE_RECURSE
  "CMakeFiles/live_execution_test.dir/LiveExecutionTest.cpp.o"
  "CMakeFiles/live_execution_test.dir/LiveExecutionTest.cpp.o.d"
  "live_execution_test"
  "live_execution_test.pdb"
  "live_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
