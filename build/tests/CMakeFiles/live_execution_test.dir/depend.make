# Empty dependencies file for live_execution_test.
# This may be replaced when dependencies are built.
