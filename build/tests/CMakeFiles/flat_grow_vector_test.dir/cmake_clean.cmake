file(REMOVE_RECURSE
  "CMakeFiles/flat_grow_vector_test.dir/FlatGrowVectorTest.cpp.o"
  "CMakeFiles/flat_grow_vector_test.dir/FlatGrowVectorTest.cpp.o.d"
  "flat_grow_vector_test"
  "flat_grow_vector_test.pdb"
  "flat_grow_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_grow_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
