# Empty compiler generated dependencies file for flat_grow_vector_test.
# This may be replaced when dependencies are built.
