# Empty compiler generated dependencies file for atomicity_checker_test.
# This may be replaced when dependencies are built.
