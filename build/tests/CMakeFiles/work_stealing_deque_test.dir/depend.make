# Empty dependencies file for work_stealing_deque_test.
# This may be replaced when dependencies are built.
