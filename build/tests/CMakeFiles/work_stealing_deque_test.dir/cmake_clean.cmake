file(REMOVE_RECURSE
  "CMakeFiles/work_stealing_deque_test.dir/WorkStealingDequeTest.cpp.o"
  "CMakeFiles/work_stealing_deque_test.dir/WorkStealingDequeTest.cpp.o.d"
  "work_stealing_deque_test"
  "work_stealing_deque_test.pdb"
  "work_stealing_deque_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_stealing_deque_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
