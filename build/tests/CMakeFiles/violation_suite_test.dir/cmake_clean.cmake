file(REMOVE_RECURSE
  "CMakeFiles/violation_suite_test.dir/ViolationSuiteTest.cpp.o"
  "CMakeFiles/violation_suite_test.dir/ViolationSuiteTest.cpp.o.d"
  "violation_suite_test"
  "violation_suite_test.pdb"
  "violation_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
