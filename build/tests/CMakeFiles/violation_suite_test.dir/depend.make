# Empty dependencies file for violation_suite_test.
# This may be replaced when dependencies are built.
