# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dpst_test[1]_include.cmake")
include("/root/repo/build/tests/dpst_builder_test[1]_include.cmake")
include("/root/repo/build/tests/atomicity_checker_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_test[1]_include.cmake")
include("/root/repo/build/tests/lockset_test[1]_include.cmake")
include("/root/repo/build/tests/shadow_memory_test[1]_include.cmake")
include("/root/repo/build/tests/lca_cache_test[1]_include.cmake")
include("/root/repo/build/tests/work_stealing_deque_test[1]_include.cmake")
include("/root/repo/build/tests/task_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/velodrome_test[1]_include.cmake")
include("/root/repo/build/tests/basic_checker_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/violation_suite_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/tree_order_test[1]_include.cmake")
include("/root/repo/build/tests/tool_context_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/flat_grow_vector_test[1]_include.cmake")
include("/root/repo/build/tests/race_detector_test[1]_include.cmake")
include("/root/repo/build/tests/live_execution_test[1]_include.cmake")
include("/root/repo/build/tests/finish_scope_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_checker_test[1]_include.cmake")
