# Empty compiler generated dependencies file for micro_dpst.
# This may be replaced when dependencies are built.
