file(REMOVE_RECURSE
  "CMakeFiles/micro_dpst.dir/micro_dpst.cpp.o"
  "CMakeFiles/micro_dpst.dir/micro_dpst.cpp.o.d"
  "micro_dpst"
  "micro_dpst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dpst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
