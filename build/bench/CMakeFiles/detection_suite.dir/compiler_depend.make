# Empty compiler generated dependencies file for detection_suite.
# This may be replaced when dependencies are built.
