file(REMOVE_RECURSE
  "CMakeFiles/detection_suite.dir/detection_suite.cpp.o"
  "CMakeFiles/detection_suite.dir/detection_suite.cpp.o.d"
  "detection_suite"
  "detection_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
