# Empty dependencies file for detection_suite.
# This may be replaced when dependencies are built.
