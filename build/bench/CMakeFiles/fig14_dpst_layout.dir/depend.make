# Empty dependencies file for fig14_dpst_layout.
# This may be replaced when dependencies are built.
