file(REMOVE_RECURSE
  "CMakeFiles/fig14_dpst_layout.dir/fig14_dpst_layout.cpp.o"
  "CMakeFiles/fig14_dpst_layout.dir/fig14_dpst_layout.cpp.o.d"
  "fig14_dpst_layout"
  "fig14_dpst_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dpst_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
