
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_overhead.cpp" "bench/CMakeFiles/fig13_overhead.dir/fig13_overhead.cpp.o" "gcc" "bench/CMakeFiles/fig13_overhead.dir/fig13_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/avc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/avc_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/avc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/avc_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/dpst/CMakeFiles/avc_dpst.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/avc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
