# Empty dependencies file for schedule_exploration.
# This may be replaced when dependencies are built.
