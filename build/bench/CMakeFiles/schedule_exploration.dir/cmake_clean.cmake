file(REMOVE_RECURSE
  "CMakeFiles/schedule_exploration.dir/schedule_exploration.cpp.o"
  "CMakeFiles/schedule_exploration.dir/schedule_exploration.cpp.o.d"
  "schedule_exploration"
  "schedule_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
