file(REMOVE_RECURSE
  "CMakeFiles/micro_checker.dir/micro_checker.cpp.o"
  "CMakeFiles/micro_checker.dir/micro_checker.cpp.o.d"
  "micro_checker"
  "micro_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
